/**
 * @file
 * Unit tests for the base library: types, RNG, statistics, CSV.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "base/csv.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/types.h"

namespace memtier {
namespace {

// ---------------------------------------------------------------- types

TEST(Types, PageGeometry)
{
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(pageBase(3), 3u * 4096u);
}

TEST(Types, LineGeometry)
{
    EXPECT_EQ(kLineSize, 64u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineOf(4096), 64u);
}

TEST(Types, RoundUpPages)
{
    EXPECT_EQ(roundUpPages(1), 1u);
    EXPECT_EQ(roundUpPages(4096), 1u);
    EXPECT_EQ(roundUpPages(4097), 2u);
    EXPECT_EQ(roundUpPages(0), 0u);
}

TEST(Types, CycleSecondsRoundTrip)
{
    const Cycles c = secondsToCycles(1.5);
    EXPECT_NEAR(cyclesToSeconds(c), 1.5, 1e-9);
    EXPECT_EQ(secondsToCycles(1.0), kCyclesPerSecond);
}

TEST(Types, LevelNames)
{
    EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::LFB), "LFB");
    EXPECT_STREQ(memLevelName(MemLevel::NVM), "NVM");
    EXPECT_STREQ(memNodeName(MemNode::DRAM), "DRAM");
    EXPECT_STREQ(memNodeName(MemNode::NVM), "NVM");
}

TEST(Types, ExternalLevels)
{
    EXPECT_TRUE(isExternalLevel(MemLevel::DRAM));
    EXPECT_TRUE(isExternalLevel(MemLevel::NVM));
    EXPECT_FALSE(isExternalLevel(MemLevel::L1));
    EXPECT_FALSE(isExternalLevel(MemLevel::LFB));
    EXPECT_FALSE(isExternalLevel(MemLevel::L3));
}

// ------------------------------------------------------------------ rng

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedZeroBound)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.nextBounded(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitMixDeterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), SplitMix64(43).next());
}

// ---------------------------------------------------------------- stats

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, Moments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 3.5);
    EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -10.0);
}

TEST(PercentileSummary, Empty)
{
    PercentileSummary p;
    EXPECT_EQ(p.percentile(0.5), 0.0);
    EXPECT_EQ(p.mean(), 0.0);
}

TEST(PercentileSummary, Quartiles)
{
    PercentileSummary p;
    for (int i = 1; i <= 101; ++i)
        p.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.25), 26.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.5), 51.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.75), 76.0);
    EXPECT_DOUBLE_EQ(p.percentile(1.0), 101.0);
    EXPECT_DOUBLE_EQ(p.mean(), 51.0);
}

TEST(PercentileSummary, InterpolatesBetweenOrderStats)
{
    PercentileSummary p;
    p.add(0.0);
    p.add(10.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.25), 2.5);
}

TEST(PercentileSummary, UnsortedInput)
{
    PercentileSummary p;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        p.add(v);
    EXPECT_DOUBLE_EQ(p.min(), 1.0);
    EXPECT_DOUBLE_EQ(p.max(), 9.0);
    EXPECT_DOUBLE_EQ(p.percentile(0.5), 5.0);
}

TEST(PercentileSummary, Stddev)
{
    PercentileSummary p;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        p.add(v);
    EXPECT_NEAR(p.stddev(), 2.138, 0.001);
}

TEST(Histogram, Buckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.9);
    h.add(9.99);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketLowEdges)
{
    Histogram h(0.0, 100.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 50.0);
}

TEST(LatencyHistogram, Empty)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(h.violationFraction(100), 0.0);
}

TEST(LatencyHistogram, BucketGeometry)
{
    using LH = LatencyHistogram;
    // Values below kSubBuckets land in their own unit bucket.
    for (std::uint64_t v = 0; v < LH::kSubBuckets; ++v) {
        EXPECT_EQ(LH::bucketIndex(v), v);
        EXPECT_EQ(LH::bucketLow(v), v);
        EXPECT_EQ(LH::bucketWidth(v), 1u);
    }
    // Every value is covered by its bucket's [low, low + width) range,
    // and bucket indices are monotone in the value.
    std::size_t prev = 0;
    for (std::uint64_t v = 1; v < (1ULL << 40); v = v * 3 + 1) {
        const std::size_t i = LH::bucketIndex(v);
        EXPECT_GE(i, prev);
        prev = i;
        EXPECT_LE(LH::bucketLow(i), v);
        EXPECT_LT(v, LH::bucketLow(i) + LH::bucketWidth(i));
        // Relative bucket resolution is 1/kSubBuckets.
        EXPECT_LE(LH::bucketWidth(i),
                  std::max<std::uint64_t>(1, v / LH::kSubBuckets + 1));
    }
    EXPECT_LT(LH::bucketIndex(~std::uint64_t{0}), LH::kNumBuckets);
}

TEST(LatencyHistogram, ExactForSmallValues)
{
    // 33 values 0..32: every value sits in its own unit-width bucket
    // (unit buckets run through the first octave), so at integral
    // ranks q*(n-1) the histogram must agree with the exact order
    // statistics. Non-integral ranks interpolate within one bucket and
    // legitimately differ from cross-value interpolation.
    LatencyHistogram h;
    PercentileSummary exact;
    for (std::uint64_t v = 0; v <= LatencyHistogram::kSubBuckets; ++v) {
        h.add(v);
        exact.add(static_cast<double>(v));
    }
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets);
    for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), exact.percentile(q)) << q;
}

TEST(LatencyHistogram, PercentilesTrackExactWithinBucketResolution)
{
    LatencyHistogram h;
    PercentileSummary exact;
    Rng rng(2026);
    for (int i = 0; i < 20000; ++i) {
        // Long-tailed sample spanning several octaves, like latency.
        const std::uint64_t v =
            100 + rng.nextBounded(1ULL << (6 + rng.nextBounded(14)));
        h.add(v);
        exact.add(static_cast<double>(v));
    }
    EXPECT_EQ(h.count(), 20000u);
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        const double e = exact.percentile(q);
        // One sub-bucket of relative error (1/32), plus interpolation
        // slack within the covering bucket.
        EXPECT_NEAR(h.percentile(q), e, e * 2.0 / 32.0 + 1.0) << q;
    }
    EXPECT_DOUBLE_EQ(h.mean(), exact.mean());
    EXPECT_EQ(h.min(), static_cast<std::uint64_t>(exact.min()));
    EXPECT_EQ(h.max(), static_cast<std::uint64_t>(exact.max()));
}

TEST(LatencyHistogram, MergeMatchesCombinedStream)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram all;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.nextBounded(1 << 20);
        if (i % 2 == 0)
            a.add(v);
        else
            b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    for (const double q : {0.1, 0.5, 0.99})
        EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q));
    EXPECT_EQ(a.countAtOrAbove(1 << 10), all.countAtOrAbove(1 << 10));
}

TEST(LatencyHistogram, ViolationCounting)
{
    LatencyHistogram h;
    for (const std::uint64_t v : {1u, 5u, 10u, 20u})
        h.add(v);
    // Unit buckets below kSubBuckets make these exact.
    EXPECT_EQ(h.countAtOrAbove(0), 4u);
    EXPECT_EQ(h.countAtOrAbove(5), 3u);
    EXPECT_EQ(h.countAtOrAbove(6), 2u);
    EXPECT_EQ(h.countAtOrAbove(21), 0u);
    EXPECT_DOUBLE_EQ(h.violationFraction(10), 0.5);
    h.add(1ULL << 30);
    EXPECT_EQ(h.countAtOrAbove(1ULL << 40), 0u);
    EXPECT_EQ(h.countAtOrAbove(1ULL << 29), 1u);
}

TEST(TimeSeries, AppendAndQuery)
{
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(1.0, 5.0);
    ts.add(2.0, 3.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_EQ(ts.last(), 3.0);
    EXPECT_EQ(ts.max(), 5.0);
}

TEST(TimeSeries, DownsampleKeepsEnds)
{
    TimeSeries ts;
    for (int i = 0; i < 100; ++i)
        ts.add(static_cast<double>(i), static_cast<double>(i));
    TimeSeries small = ts.downsampled(10);
    EXPECT_LE(small.size(), 12u);
    EXPECT_EQ(small.points().front().time, 0.0);
    EXPECT_EQ(small.points().back().time, 99.0);
}

TEST(TimeSeries, DownsampleNoopWhenSmall)
{
    TimeSeries ts;
    ts.add(0.0, 1.0);
    EXPECT_EQ(ts.downsampled(10).size(), 1u);
}

// ------------------------------------------------------------------ csv

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.cell(std::uint64_t{1}).cell(std::string("x")).endRow();
    csv.cell(2.5).cell(std::string("y")).endRow();
    EXPECT_EQ(out.str(), "a,b\n1,x\n2.5,y\n");
    EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, EscapesSpecials)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.cell(std::string("a,b")).cell(std::string("q\"q")).endRow();
    EXPECT_EQ(out.str(), "\"a,b\",\"q\"\"q\"\n");
}

TEST(Csv, IntegralDoubleFormatting)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.cell(3.0).endRow();
    EXPECT_EQ(out.str(), "3\n");
}

// -------------------------------------------------------------- logging

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

}  // namespace
}  // namespace memtier

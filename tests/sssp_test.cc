/**
 * @file
 * Correctness tests for the SSSP extension workload and the weighted
 * graph support underneath it.
 */

#include <gtest/gtest.h>

#include "apps/sssp.h"
#include "exp/runner.h"
#include "graph/generators.h"
#include "runtime/sim_heap.h"

namespace memtier {
namespace {

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(1024 * kPageSize);
    cfg.nvm = makeNvmParams(4096 * kPageSize);
    cfg.numThreads = 6;
    return cfg;
}

CsrGraph
weightedGraph(int scale, int degree, std::uint64_t seed)
{
    CsrGraph g = CsrGraph::fromEdgeList(
        static_cast<NodeId>(1 << scale),
        generateUrand(scale, degree, seed));
    g.generateWeights(seed);
    return g;
}

TEST(Weights, DeterministicAndSymmetric)
{
    const CsrGraph g = weightedGraph(8, 8, 5);
    ASSERT_TRUE(g.hasWeights());
    // Both directions of an undirected edge carry the same weight.
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const auto begin = g.offsets()[static_cast<std::size_t>(u)];
        const auto end = g.offsets()[static_cast<std::size_t>(u) + 1];
        for (std::int64_t e = begin; e < end; ++e) {
            const NodeId v = g.adjacency()[static_cast<std::size_t>(e)];
            // Find the reverse edge.
            const auto vb = g.offsets()[static_cast<std::size_t>(v)];
            const auto ve = g.offsets()[static_cast<std::size_t>(v) + 1];
            bool found = false;
            for (std::int64_t r = vb; r < ve; ++r) {
                if (g.adjacency()[static_cast<std::size_t>(r)] == u) {
                    EXPECT_EQ(g.weight(e), g.weight(r));
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found);
        }
    }
}

TEST(Weights, InGapbsRange)
{
    const CsrGraph g = weightedGraph(8, 8, 7);
    for (std::int64_t e = 0; e < g.numEdges(); ++e) {
        EXPECT_GE(g.weight(e), 1);
        EXPECT_LE(g.weight(e), 255);
    }
}

TEST(Weights, SerializedBytesGrow)
{
    CsrGraph g = CsrGraph::fromEdgeList(4, {{0, 1}, {1, 2}});
    const std::uint64_t unweighted = g.serializedBytes();
    g.generateWeights(1);
    EXPECT_EQ(g.serializedBytes(),
              unweighted + static_cast<std::uint64_t>(g.numEdges()) *
                               sizeof(std::int32_t));
}

TEST(SimCsrGraphWeighted, LoadsWeightsObject)
{
    Engine eng(testConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    const CsrGraph host = weightedGraph(7, 4, 3);
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "w");
    ASSERT_TRUE(g.hasWeights());
    EXPECT_EQ(heap.liveAllocations(), 3u);  // index+adjacency+weights.
    for (std::int64_t e = 0; e < host.numEdges(); e += 7)
        EXPECT_EQ(g.weightOf(t, e), host.weight(e));
    g.free(heap, t);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

class SsspOnGraphs : public ::testing::TestWithParam<int>
{
};

TEST_P(SsspOnGraphs, MatchesDijkstra)
{
    Engine eng(testConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    const CsrGraph host = weightedGraph(GetParam(), 8, 31);
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "w");

    const SsspOutput out = runSssp(eng, heap, g, /*source=*/1);
    const std::vector<std::int64_t> want = hostSsspDistances(host, 1);
    ASSERT_EQ(out.dist.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
        EXPECT_EQ(out.dist[v], want[v]) << "vertex " << v;
    g.free(heap, t);
}

INSTANTIATE_TEST_SUITE_P(Scales, SsspOnGraphs,
                         ::testing::Values(6, 8, 10));

TEST(Sssp, UnreachableVerticesStayMinusOne)
{
    Engine eng(testConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    CsrGraph host = CsrGraph::fromEdgeList(5, {{0, 1}, {2, 3}});
    host.generateWeights(1);
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "w");
    const SsspOutput out = runSssp(eng, heap, g, 0);
    EXPECT_EQ(out.dist[0], 0);
    EXPECT_GT(out.dist[1], 0);
    EXPECT_EQ(out.dist[2], -1);
    EXPECT_EQ(out.dist[4], -1);
    g.free(heap, t);
}

TEST(Sssp, RunnerIntegration)
{
    RunConfig rc;
    rc.workload.app = App::SSSP;
    rc.workload.kind = GraphKind::Urand;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.sys.dram = makeDramParams(512 * kPageSize);
    rc.sys.nvm = makeNvmParams(2048 * kPageSize);
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.workloadName, "sssp_urand");
    EXPECT_GT(r.totalSeconds, 0.0);
    EXPECT_NE(r.outputChecksum, 0u);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Unit tests for the object-level placement core: the plan container
 * and the greedy/spill planner.
 */

#include <gtest/gtest.h>

#include "core/object_planner.h"
#include "core/placement_plan.h"

namespace memtier {
namespace {

SiteProfile
site(const std::string &name, std::uint64_t bytes,
     std::uint64_t ext_samples)
{
    SiteProfile p;
    p.site = name;
    p.peakLiveBytes = bytes;
    p.externalSamples = ext_samples;
    p.totalSamples = ext_samples;
    return p;
}

// -------------------------------------------------------- PlacementPlan

TEST(PlacementPlan, LookupBoundSite)
{
    PlacementPlan plan;
    plan.bindSite("x", MemPolicy::bind(MemNode::DRAM));
    const auto p = plan.lookup("x");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->node, MemNode::DRAM);
    EXPECT_FALSE(plan.lookup("y").has_value());
}

TEST(PlacementPlan, BindAllAppliesToUnknownSites)
{
    PlacementPlan plan = PlacementPlan::bindAll(MemNode::NVM);
    const auto p = plan.lookup("anything");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->node, MemNode::NVM);
}

TEST(PlacementPlan, RebindOverwrites)
{
    PlacementPlan plan;
    plan.bindSite("x", MemPolicy::bind(MemNode::DRAM));
    plan.bindSite("x", MemPolicy::bind(MemNode::NVM));
    EXPECT_EQ(plan.lookup("x")->node, MemNode::NVM);
    EXPECT_EQ(plan.size(), 1u);
}

// -------------------------------------------------------------- Planner

TEST(Planner, GreedyFillsDramInScoreOrder)
{
    // Profiles arrive sorted by score (as siteProfiles guarantees).
    std::vector<SiteProfile> profiles{
        site("hottest", 4 * kPageSize, 1000),
        site("warm", 4 * kPageSize, 100),
        site("cold", 4 * kPageSize, 10),
    };
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 8 * kPageSize;  // Room for two sites.
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_EQ(r.plan.lookup("hottest")->node, MemNode::DRAM);
    EXPECT_EQ(r.plan.lookup("warm")->node, MemNode::DRAM);
    EXPECT_EQ(r.plan.lookup("cold")->node, MemNode::NVM);
    EXPECT_EQ(r.dramBytesPlanned, 8 * kPageSize);
    EXPECT_FALSE(r.spilled);
}

TEST(Planner, SkipsOverlargeObjectButKeepsFilling)
{
    std::vector<SiteProfile> profiles{
        site("huge", 100 * kPageSize, 1000),
        site("small", 2 * kPageSize, 100),
    };
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 4 * kPageSize;
    const PlannerResult r = buildPlan(profiles, cfg);
    // Whole-object policy: huge cannot fit, small still placed.
    EXPECT_EQ(r.plan.lookup("huge")->node, MemNode::NVM);
    EXPECT_EQ(r.plan.lookup("small")->node, MemNode::DRAM);
}

TEST(Planner, SpillVariantSplitsFirstNonFitting)
{
    std::vector<SiteProfile> profiles{
        site("hot", 2 * kPageSize, 1000),
        site("big", 100 * kPageSize, 500),
        site("rest", 2 * kPageSize, 10),
    };
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 10 * kPageSize;
    cfg.allowSpill = true;
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_TRUE(r.spilled);
    const auto big = r.plan.lookup("big");
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(big->mode, MemPolicy::Mode::Split);
    EXPECT_EQ(big->dramPages, 8u);  // 10 - 2 pages already used.
    // Everything after the spill goes entirely to NVM.
    EXPECT_EQ(r.plan.lookup("rest")->node, MemNode::NVM);
    EXPECT_EQ(r.dramBytesPlanned, 10 * kPageSize);
}

TEST(Planner, OnlyOneObjectSpills)
{
    std::vector<SiteProfile> profiles{
        site("big1", 100 * kPageSize, 1000),
        site("big2", 100 * kPageSize, 900),
    };
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 10 * kPageSize;
    cfg.allowSpill = true;
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_EQ(r.plan.lookup("big1")->mode, MemPolicy::Mode::Split);
    EXPECT_EQ(r.plan.lookup("big2")->mode, MemPolicy::Mode::Bind);
    EXPECT_EQ(r.plan.lookup("big2")->node, MemNode::NVM);
}

TEST(Planner, ColdSitesGoToNvmRegardlessOfSize)
{
    std::vector<SiteProfile> profiles{site("cold", kPageSize, 0)};
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 100 * kPageSize;
    cfg.minSamples = 1;
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_EQ(r.plan.lookup("cold")->node, MemNode::NVM);
    EXPECT_EQ(r.dramBytesPlanned, 0u);
}

TEST(Planner, ExactFitConsumesWholeBudget)
{
    std::vector<SiteProfile> profiles{site("a", 4 * kPageSize, 10)};
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 4 * kPageSize;
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_EQ(r.plan.lookup("a")->node, MemNode::DRAM);
    EXPECT_EQ(r.dramBytesPlanned, 4 * kPageSize);
}

TEST(Planner, DecisionsPreserveRankingOrder)
{
    std::vector<SiteProfile> profiles{
        site("first", kPageSize, 100),
        site("second", kPageSize, 50),
    };
    PlannerConfig cfg;
    cfg.dramBudgetBytes = 8 * kPageSize;
    const PlannerResult r = buildPlan(profiles, cfg);
    ASSERT_EQ(r.decisions.size(), 2u);
    EXPECT_EQ(r.decisions[0].profile.site, "first");
    EXPECT_EQ(r.decisions[1].profile.site, "second");
}

TEST(Planner, DramBudgetHelper)
{
    EXPECT_EQ(dramBudget(1000, 0.1), 900u);
    EXPECT_EQ(dramBudget(1000, 0.0), 1000u);
}

// Parameterized: for any budget, planned DRAM bytes never exceed it and
// every site receives a decision.
class PlannerBudgetSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlannerBudgetSweep, InvariantsHold)
{
    std::vector<SiteProfile> profiles;
    for (int i = 0; i < 12; ++i) {
        profiles.push_back(site("s" + std::to_string(i),
                                (1 + i % 5) * kPageSize,
                                1000 - i * 50));
    }
    PlannerConfig cfg;
    cfg.dramBudgetBytes = GetParam();
    cfg.allowSpill = (GetParam() % 2) == 0;
    const PlannerResult r = buildPlan(profiles, cfg);
    EXPECT_LE(r.dramBytesPlanned, cfg.dramBudgetBytes);
    EXPECT_EQ(r.plan.size(), profiles.size());
    for (const auto &p : profiles)
        EXPECT_TRUE(r.plan.lookup(p.site).has_value());
}

INSTANTIATE_TEST_SUITE_P(Budgets, PlannerBudgetSweep,
                         ::testing::Values(0, kPageSize,
                                           7 * kPageSize,
                                           16 * kPageSize,
                                           1024 * kPageSize));

}  // namespace
}  // namespace memtier

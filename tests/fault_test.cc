/**
 * @file
 * Tests for the fault-injection subsystem: plan parsing, the injector's
 * deterministic per-point streams, the migration circuit breaker, the
 * kernel's failure-aware migration paths, and end-to-end properties --
 * deterministic replay of faulty runs, observer-only invariant
 * checking, and the workload-survives-20%-migration-failures
 * acceptance scenario.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "os/invariants.h"
#include "os/kernel.h"
#include "os/physical_memory.h"
#include "sim/engine.h"

namespace memtier {
namespace {

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, ParsesFullSpec)
{
    const FaultPlan plan = FaultPlan::parseOrDie(
        "migrate:p=0.2,burst=8;alloc:p=0.05;"
        "nvmlat:p=0.01,extra_ns=400;seed=7");
    EXPECT_TRUE(plan.anyEnabled());
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::Migration).probability, 0.2);
    EXPECT_EQ(plan.at(FaultPoint::Migration).burstLength, 8u);
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::FrameAlloc).probability, 0.05);
    EXPECT_EQ(plan.at(FaultPoint::FrameAlloc).burstLength, 1u);
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::NvmLatency).probability, 0.01);
    EXPECT_GT(plan.at(FaultPoint::NvmLatency).extraCycles, 0u);
    EXPECT_FALSE(plan.at(FaultPoint::Exchange).enabled());
    EXPECT_FALSE(plan.at(FaultPoint::DiskRead).enabled());
}

TEST(FaultPlan, ParsesTimeWindows)
{
    const FaultPlan plan =
        FaultPlan::parseOrDie("diskread:p=0.5,from_ms=1,to_ms=2.5");
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::DiskRead).fromSec, 0.001);
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::DiskRead).toSec, 0.0025);
}

TEST(FaultPlan, EmptySpecIsNoFaults)
{
    FaultPlan plan;
    EXPECT_TRUE(FaultPlan::parse("", &plan));
    EXPECT_FALSE(plan.anyEnabled());
    EXPECT_EQ(plan.summary(), "(no faults)");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "migrate",             // No colon.
        "bogus:p=0.5",         // Unknown point.
        "migrate:p=1.5",       // Probability out of range.
        "migrate:p=abc",       // Non-numeric probability.
        "migrate:p=0.1,burst=0",  // Burst must be >= 1.
        "migrate:burst=4",     // Point without p= stays disabled.
        "migrate:q=1",         // Unknown key.
        "seed=abc",            // Non-numeric seed.
    };
    for (const char *spec : bad) {
        FaultPlan plan;
        plan.seed = 99;  // Sentinel: parse failure must not touch out.
        std::string error;
        EXPECT_FALSE(FaultPlan::parse(spec, &plan, &error)) << spec;
        EXPECT_FALSE(error.empty()) << spec;
        EXPECT_EQ(plan.seed, 99u) << spec;
    }
}

TEST(FaultPlan, ParsesEccPoints)
{
    const FaultPlan plan =
        FaultPlan::parseOrDie("ecc_ce:p=0.1,burst=2;ecc_ue:p=0.01;seed=3");
    EXPECT_TRUE(plan.at(FaultPoint::EccCorrectable).enabled());
    EXPECT_DOUBLE_EQ(plan.at(FaultPoint::EccCorrectable).probability,
                     0.1);
    EXPECT_EQ(plan.at(FaultPoint::EccCorrectable).burstLength, 2u);
    EXPECT_TRUE(plan.at(FaultPoint::EccUncorrectable).enabled());
    const std::string s = plan.summary();
    EXPECT_NE(s.find("ecc_ce"), std::string::npos) << s;
    EXPECT_NE(s.find("ecc_ue"), std::string::npos) << s;
}

TEST(FaultPlan, PointCountDerivedFromSentinel)
{
    // kNumFaultPoints derives from the enum's Count sentinel, so every
    // point has a stable name and a parseable spelling.
    EXPECT_EQ(kNumFaultPoints, static_cast<int>(FaultPoint::Count));
    for (int i = 0; i < kNumFaultPoints; ++i) {
        const auto point = static_cast<FaultPoint>(i);
        const char *name = faultPointName(point);
        ASSERT_NE(name, nullptr);
        const FaultPlan plan =
            FaultPlan::parseOrDie(std::string(name) + ":p=0.5");
        EXPECT_TRUE(plan.at(point).enabled()) << name;
    }
}

TEST(FaultPlan, UnknownPointErrorNamesTheAlternatives)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse("bogus:p=0.5", &plan, &error));
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
    EXPECT_NE(error.find("ecc_ce"), std::string::npos) << error;
    EXPECT_NE(error.find("ecc_ue"), std::string::npos) << error;
}

TEST(FaultPlan, OutOfRangeProbabilityErrorIsSpecific)
{
    for (const char *spec : {"migrate:p=1.5", "ecc_ce:p=-0.25"}) {
        FaultPlan plan;
        std::string error;
        EXPECT_FALSE(FaultPlan::parse(spec, &plan, &error)) << spec;
        EXPECT_NE(error.find("out of range"), std::string::npos)
            << spec << ": " << error;
    }
}

TEST(FaultPlan, SummaryNamesEnabledPoints)
{
    const FaultPlan plan =
        FaultPlan::parseOrDie("migrate:p=0.2,burst=8;seed=7");
    const std::string s = plan.summary();
    EXPECT_NE(s.find("migrate p=0.2"), std::string::npos) << s;
    EXPECT_NE(s.find("burst=8"), std::string::npos) << s;
    EXPECT_NE(s.find("seed=7"), std::string::npos) << s;
}

TEST(FaultPlan, FromEnvOrPrefersEnvironment)
{
    const char *var = "MEMTIER_TEST_FAULT_PLAN";
    unsetenv(var);
    FaultPlan fallback;
    fallback.seed = 123;
    EXPECT_EQ(FaultPlan::fromEnvOr(var, fallback).seed, 123u);

    setenv(var, "migrate:p=0.5;seed=11", 1);
    const FaultPlan from_env = FaultPlan::fromEnvOr(var, fallback);
    EXPECT_EQ(from_env.seed, 11u);
    EXPECT_DOUBLE_EQ(from_env.at(FaultPoint::Migration).probability,
                     0.5);
    unsetenv(var);
}

// -------------------------------------------------------- FaultInjector

std::vector<bool>
decisionTrace(FaultInjector &inj, FaultPoint point, int n)
{
    std::vector<bool> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        out.push_back(
            inj.shouldFail(point, static_cast<Cycles>(1000 + i)));
    }
    return out;
}

TEST(FaultInjector, SameSeedGivesIdenticalDecisions)
{
    const FaultPlan plan = FaultPlan::parseOrDie("migrate:p=0.3;seed=5");
    FaultInjector a(plan);
    FaultInjector b(plan);
    const std::vector<bool> ta =
        decisionTrace(a, FaultPoint::Migration, 2000);
    const std::vector<bool> tb =
        decisionTrace(b, FaultPoint::Migration, 2000);
    EXPECT_EQ(ta, tb);
    EXPECT_GT(a.injected(FaultPoint::Migration), 0u);
    EXPECT_LT(a.injected(FaultPoint::Migration), 2000u);
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultInjector a(FaultPlan::parseOrDie("migrate:p=0.3;seed=5"));
    FaultInjector b(FaultPlan::parseOrDie("migrate:p=0.3;seed=6"));
    EXPECT_NE(decisionTrace(a, FaultPoint::Migration, 2000),
              decisionTrace(b, FaultPoint::Migration, 2000));
}

TEST(FaultInjector, BurstFailsConsecutively)
{
    FaultInjector inj(
        FaultPlan::parseOrDie("migrate:p=0.05,burst=4;seed=9"));
    const std::vector<bool> trace =
        decisionTrace(inj, FaultPoint::Migration, 4000);
    // Every maximal run of failures is at least one full burst long
    // (later triggers may chain bursts, so runs are >= 4, not == 4).
    std::size_t i = 0;
    int runs = 0;
    while (i < trace.size()) {
        if (!trace[i]) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < trace.size() && trace[j])
            ++j;
        if (j < trace.size()) {  // Ignore a run truncated by the end.
            EXPECT_GE(j - i, 4u) << "short burst at " << i;
        }
        ++runs;
        i = j;
    }
    EXPECT_GT(runs, 0);
}

TEST(FaultInjector, TimeWindowConfinesFailures)
{
    FaultInjector inj(
        FaultPlan::parseOrDie("migrate:p=1,from_ms=1,to_ms=2"));
    EXPECT_FALSE(
        inj.shouldFail(FaultPoint::Migration, secondsToCycles(0.0005)));
    EXPECT_TRUE(
        inj.shouldFail(FaultPoint::Migration, secondsToCycles(0.0015)));
    EXPECT_FALSE(
        inj.shouldFail(FaultPoint::Migration, secondsToCycles(0.0025)));
    // Out-of-window queries are not even counted.
    EXPECT_EQ(inj.queried(FaultPoint::Migration), 1u);
    EXPECT_EQ(inj.injected(FaultPoint::Migration), 1u);
}

TEST(FaultInjector, DisabledPointNeverFires)
{
    FaultInjector inj(FaultPlan::parseOrDie("migrate:p=0.5"));
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.shouldFail(FaultPoint::FrameAlloc,
                                    static_cast<Cycles>(i)));
    }
    EXPECT_EQ(inj.queried(FaultPoint::FrameAlloc), 0u);
    EXPECT_EQ(inj.injected(FaultPoint::FrameAlloc), 0u);
}

TEST(FaultInjector, LatencyPenaltyMatchesPlanAmplitude)
{
    const FaultPlan plan =
        FaultPlan::parseOrDie("nvmlat:p=1,extra_ns=400");
    FaultInjector inj(plan);
    EXPECT_EQ(inj.latencyPenalty(FaultPoint::NvmLatency, 1000),
              plan.at(FaultPoint::NvmLatency).extraCycles);
    EXPECT_GT(inj.latencyPenalty(FaultPoint::NvmLatency, 1001), 0u);
    // A disabled point adds nothing.
    EXPECT_EQ(inj.latencyPenalty(FaultPoint::DiskRead, 1000), 0u);
}

// ------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, TripsOnFailureBurstAndCoolsDown)
{
    CircuitBreaker b;
    const Cycles t = secondsToCycles(1.0);
    bool tripped = false;
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(tripped);
        tripped = b.record(false, t);
    }
    EXPECT_TRUE(tripped);
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_TRUE(b.isOpen(t));
    EXPECT_TRUE(b.isOpen(t + b.params().cooldown - 1));
    EXPECT_FALSE(b.isOpen(t + b.params().cooldown));
}

TEST(CircuitBreaker, NeedsMinimumAttempts)
{
    CircuitBreaker b;
    const Cycles t = secondsToCycles(1.0);
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(b.record(false, t));
    EXPECT_EQ(b.trips(), 0u);
    EXPECT_FALSE(b.isOpen(t));
    EXPECT_DOUBLE_EQ(b.failureRate(), 1.0);
}

TEST(CircuitBreaker, SuccessesHoldItClosed)
{
    // 75% successes stay under the 50% trip ratio; 75% failures cross
    // it as soon as the minimum-attempts floor is met.
    CircuitBreaker mostly_ok;
    CircuitBreaker mostly_bad;
    Cycles t = secondsToCycles(1.0);
    for (int i = 0; i < 40; ++i) {
        mostly_ok.record(i % 4 != 0, t);
        mostly_bad.record(i % 4 == 0, t);
        ++t;
    }
    EXPECT_EQ(mostly_ok.trips(), 0u);
    EXPECT_FALSE(mostly_ok.isOpen(t));
    EXPECT_GE(mostly_bad.trips(), 1u);
}

TEST(CircuitBreaker, OldFailuresDecayAway)
{
    CircuitBreaker b;
    const Cycles t0 = secondsToCycles(1.0);
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(b.record(false, t0));
    // Twenty half-lives later the six old failures weigh ~nothing, so
    // six fresh failures still sit below the minimum-attempts floor.
    const Cycles t1 = t0 + 20 * b.params().decayHalfLife;
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(b.record(false, t1));
    EXPECT_EQ(b.trips(), 0u);
}

// ------------------------------------------------ Kernel failure paths

/** Tiny-tier kernel with a pluggable fault injector. */
class FaultKernelTest : public ::testing::Test
{
  protected:
    FaultKernelTest()
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, KernelParams{})
    {
        kern.setShootdownClient(&shootdown);
    }

    /** mmap @p pages pages and touch each once (first-touch allocate). */
    Addr
    populate(std::uint64_t pages, Cycles start = 1000)
    {
        const Addr base = kern.mmap(start, pages * kPageSize, 1, "test");
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(base) + i, start + i, MemOp::Store);
        return base;
    }

    /** First populated page currently resident on @p node. */
    PageNum
    findResident(Addr base, std::uint64_t pages, MemNode node) const
    {
        for (std::uint64_t i = 0; i < pages; ++i) {
            if (kern.nodeOf(pageOf(base) + i) == node)
                return pageOf(base) + i;
        }
        return kNoPage;
    }

    /**
     * Fill DRAM via one large region, park @p nvm_pages on NVM via a
     * second, then free the large region so DRAM has room again.
     * Returns the NVM-resident region's base.
     */
    Addr
    overflowToNvm(std::uint64_t nvm_pages)
    {
        const Addr big = populate(kDramPages);
        const Addr parked = populate(nvm_pages, 5000);
        EXPECT_EQ(findResident(parked, nvm_pages, MemNode::DRAM),
                  kNoPage);
        kern.munmap(6000, big);
        return parked;
    }

    class CountingShootdown : public TlbShootdownClient
    {
      public:
        void tlbShootdown(PageNum) override { ++count; }
        std::uint64_t count = 0;
    };

    static constexpr std::uint64_t kDramPages = 128;
    static constexpr std::uint64_t kNvmPages = 512;

    PhysicalMemory phys;
    CountingShootdown shootdown;
    Kernel kern;
};

TEST_F(FaultKernelTest, PromotionRetriesWithBackoffThenFails)
{
    const Addr parked = overflowToNvm(16);
    const PageNum victim = findResident(parked, 16, MemNode::NVM);
    ASSERT_NE(victim, kNoPage);

    FaultInjector inj(FaultPlan::parseOrDie("migrate:p=1"));
    kern.setFaultInjector(&inj);
    const std::uint64_t dram_free = phys.dram().freePages();

    const Cycles t = secondsToCycles(0.01);
    EXPECT_EQ(kern.promotePage(victim, t), 0u);

    // migrateRetryLimit (3) retries after the first failure: four
    // injected failures total, no success, and every transiently
    // grabbed DRAM frame released again.
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.pgmigrateFail, 4u);
    EXPECT_EQ(vm.promoteRetry, 3u);
    EXPECT_EQ(vm.pgpromoteSuccess, 0u);
    EXPECT_EQ(vm.breakerTrips, 0u);  // 4 attempts < minAttempts (8).
    EXPECT_EQ(kern.nodeOf(victim), MemNode::NVM);
    EXPECT_EQ(phys.dram().freePages(), dram_free);

    InvariantChecker checker(kern);
    checker.checkNow(t);
}

TEST_F(FaultKernelTest, RepeatedFailuresTripBreakerAndPause)
{
    const Addr parked = overflowToNvm(16);
    const PageNum v1 = findResident(parked, 16, MemNode::NVM);
    const PageNum v2 = v1 + 1;
    const PageNum v3 = v1 + 2;
    ASSERT_EQ(kern.nodeOf(v3), MemNode::NVM);

    FaultInjector inj(FaultPlan::parseOrDie("migrate:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);

    // Two failed promotions = 8 failed attempts: the 8th record crosses
    // the breaker's minimum-attempts floor at failure rate 1.0.
    EXPECT_EQ(kern.promotePage(v1, t), 0u);
    EXPECT_EQ(kern.promotePage(v2, t), 0u);
    EXPECT_EQ(kern.vmstat().breakerTrips, 1u);
    EXPECT_EQ(kern.migrationBreaker().trips(), 1u);
    EXPECT_TRUE(kern.migrationBreaker().isOpen(t));

    // While open, promotions are refused without touching the injector.
    const std::uint64_t fails_before = kern.vmstat().pgmigrateFail;
    EXPECT_EQ(kern.promotePage(v3, t), 0u);
    EXPECT_EQ(kern.vmstat().promotePaused, 1u);
    EXPECT_EQ(kern.vmstat().pgmigrateFail, fails_before);

    // After the cooldown (and with the transient fault gone) promotion
    // recovers.
    kern.setFaultInjector(nullptr);
    const Cycles later = t + kern.migrationBreaker().params().cooldown;
    EXPECT_FALSE(kern.migrationsPaused(later));
    EXPECT_GT(kern.promotePage(v3, later), 0u);
    EXPECT_EQ(kern.nodeOf(v3), MemNode::DRAM);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 1u);

    InvariantChecker checker(kern);
    checker.checkNow(later);
}

TEST_F(FaultKernelTest, InjectedAllocFailureFallsBackToNvm)
{
    FaultInjector inj(FaultPlan::parseOrDie("alloc:p=1"));
    kern.setFaultInjector(&inj);

    const Addr base = kern.mmap(1000, 4 * kPageSize, 1, "obj");
    for (std::uint64_t i = 0; i < 4; ++i)
        kern.touchPage(pageOf(base) + i, 1000 + i, MemOp::Store);

    // Every first touch wanted DRAM (it is empty), got an injected
    // ENOMEM, and degraded to NVM placement instead of OOMing.
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.pgallocFail, 4u);
    EXPECT_EQ(vm.pgfault, 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(kern.nodeOf(pageOf(base) + i), MemNode::NVM);

    InvariantChecker checker(kern);
    checker.checkNow(2000);
}

TEST_F(FaultKernelTest, DiskReadErrorsRetryWithBoundedBudget)
{
    const Addr file = kern.registerFile(2 * kPageSize, "input.sg");
    FaultInjector inj(FaultPlan::parseOrDie("diskread:p=1"));
    kern.setFaultInjector(&inj);

    const Cycles cost = kern.ensureCached(pageOf(file), 1000);
    // p=1 exhausts the whole retry budget (diskReadRetryLimit = 4);
    // each re-issue charges another full disk read.
    EXPECT_EQ(kern.vmstat().diskReadRetry, 4u);
    EXPECT_GT(cost, 4 * KernelParams{}.diskReadCyclesPerPage);

    // Once cached, no further disk traffic and no further retries.
    EXPECT_EQ(kern.ensureCached(pageOf(file), 2000), 0u);
    EXPECT_EQ(kern.vmstat().diskReadRetry, 4u);
}

TEST_F(FaultKernelTest, FailedDemotionStopsReclaimWithoutDamage)
{
    const Addr a = kern.mmap(0, kDramPages * kPageSize, 1, "big");
    for (std::uint64_t i = 0; i < kDramPages - 2; ++i)
        kern.touchPage(pageOf(a) + i, 1000 + i, MemOp::Store);
    ASSERT_LT(phys.dram().freePages(), 32u);  // Below the low watermark.

    FaultInjector inj(FaultPlan::parseOrDie("migrate:p=1"));
    kern.setFaultInjector(&inj);
    kern.kswapdTick(secondsToCycles(0.01));

    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.pgdemoteKswapd, 0u);
    EXPECT_GE(vm.pgmigrateFail, 1u);

    // With the fault cleared the next wakeup drains DRAM as usual.
    kern.setFaultInjector(nullptr);
    kern.kswapdTick(secondsToCycles(0.02));
    EXPECT_GT(kern.vmstat().pgdemoteKswapd, 0u);

    InvariantChecker checker(kern);
    checker.checkNow(secondsToCycles(0.03));
}

TEST_F(FaultKernelTest, FailedExchangeHasNoSideEffects)
{
    const Addr big = populate(kDramPages);
    const Addr parked = populate(16, 5000);
    const PageNum dram_vpn = findResident(big, kDramPages, MemNode::DRAM);
    const PageNum nvm_vpn = findResident(parked, 16, MemNode::NVM);
    ASSERT_NE(dram_vpn, kNoPage);
    ASSERT_NE(nvm_vpn, kNoPage);

    FaultInjector inj(FaultPlan::parseOrDie("exchange:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);
    EXPECT_EQ(kern.exchangePages(nvm_vpn, dram_vpn, t), 0u);
    EXPECT_EQ(kern.vmstat().pgexchangeSuccess, 0u);
    EXPECT_EQ(kern.vmstat().pgmigrateFail, 1u);
    EXPECT_EQ(kern.nodeOf(nvm_vpn), MemNode::NVM);
    EXPECT_EQ(kern.nodeOf(dram_vpn), MemNode::DRAM);

    // The same exchange succeeds once the fault clears.
    kern.setFaultInjector(nullptr);
    EXPECT_GT(kern.exchangePages(nvm_vpn, dram_vpn, t + 1), 0u);
    EXPECT_EQ(kern.vmstat().pgexchangeSuccess, 1u);
    EXPECT_EQ(kern.nodeOf(nvm_vpn), MemNode::DRAM);
    EXPECT_EQ(kern.nodeOf(dram_vpn), MemNode::NVM);

    InvariantChecker checker(kern);
    checker.checkNow(t + 2);
}

// ---------------------------------------------- Memory failure (ECC)

TEST_F(FaultKernelTest, CorrectableThresholdSoftOfflinesTheFrame)
{
    const Addr base = populate(4);
    const PageNum vpn = pageOf(base);
    const FrameNum old_frame = kern.pageMeta(vpn)->frame;
    const std::uint64_t healthy = phys.dram().healthyPages();

    FaultInjector inj(FaultPlan::parseOrDie("ecc_ce:p=1"));
    kern.setFaultInjector(&inj);

    // Threshold is 3 CEs on the same frame: the first two touches only
    // count, the third soft-offlines (migrate to a healthy frame, same
    // tier, retire the failing one). The touch itself still completes.
    const Cycles t = secondsToCycles(0.01);
    kern.touchPage(vpn, t, MemOp::Load);
    kern.touchPage(vpn, t + 1, MemOp::Load);
    EXPECT_EQ(kern.vmstat().hwpoisonSoftOffline, 0u);
    const TouchResult tr = kern.touchPage(vpn, t + 2, MemOp::Load);
    EXPECT_FALSE(tr.sigbus);

    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.hwpoisonCe, 3u);
    EXPECT_EQ(vm.hwpoisonSoftOffline, 1u);
    EXPECT_EQ(vm.hwpoisonFramesRetired, 1u);
    EXPECT_EQ(vm.hwpoisonSigbus, 0u);
    // Soft offline is not a promotion/demotion/exchange: the migration
    // counter identity is untouched.
    EXPECT_EQ(vm.pgmigrateSuccess, 0u);

    const PageMeta *meta = kern.pageMeta(vpn);
    ASSERT_NE(meta, nullptr);
    EXPECT_TRUE(meta->present);
    EXPECT_EQ(meta->node, MemNode::DRAM);  // Same tier preferred.
    EXPECT_NE(meta->frame, old_frame);
    EXPECT_TRUE(phys.dram().isRetired(old_frame));
    EXPECT_EQ(phys.dram().healthyPages(), healthy - 1);
    EXPECT_EQ(phys.dram().retiredPages(), 1u);

    InvariantChecker checker(kern);
    checker.checkNow(t + 3);
}

TEST_F(FaultKernelTest, UncorrectableAnonymousPageRaisesSigbus)
{
    const Addr base = populate(4);
    const PageNum vpn = pageOf(base) + 1;
    const FrameNum old_frame = kern.pageMeta(vpn)->frame;

    FaultInjector inj(FaultPlan::parseOrDie("ecc_ue:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);
    const std::uint64_t shots = shootdown.count;
    const TouchResult tr = kern.touchPage(vpn, t, MemOp::Load);

    // The only copy of an anonymous page died with its frame: the
    // touch did not complete, the mapping is gone, the frame poisoned.
    EXPECT_TRUE(tr.sigbus);
    EXPECT_EQ(tr.node, MemNode::DRAM);  // Failed frame's tier (timing).
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.hwpoisonUe, 1u);
    EXPECT_EQ(vm.hwpoisonSigbus, 1u);
    EXPECT_EQ(vm.hwpoisonFramesRetired, 1u);
    EXPECT_EQ(kern.pageMeta(vpn), nullptr);
    EXPECT_TRUE(phys.dram().isRetired(old_frame));
    EXPECT_GT(shootdown.count, shots);

    // The SIGBUS-analogue is survivable: a restarted iteration's next
    // touch takes a fresh minor fault onto a healthy frame.
    kern.setFaultInjector(nullptr);
    const std::uint64_t faults_before = vm.pgfault;
    const TouchResult again = kern.touchPage(vpn, t + 10, MemOp::Store);
    EXPECT_FALSE(again.sigbus);
    EXPECT_EQ(kern.vmstat().pgfault, faults_before + 1);
    ASSERT_NE(kern.pageMeta(vpn), nullptr);
    EXPECT_NE(kern.pageMeta(vpn)->frame, old_frame);

    InvariantChecker checker(kern);
    checker.checkNow(t + 11);
}

TEST_F(FaultKernelTest, UncorrectableCleanCachePageRereadsFromDisk)
{
    const Addr file = kern.registerFile(2 * kPageSize, "input.sg");
    const PageNum vpn = pageOf(file);
    kern.ensureCached(vpn, 1000);
    const FrameNum old_frame = kern.pageMeta(vpn)->frame;

    FaultInjector inj(FaultPlan::parseOrDie("ecc_ue:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);
    const TouchResult tr = kern.touchPage(vpn, t, MemOp::Load);

    // A clean page-cache page has an intact copy on disk: the poisoned
    // frame is dropped and re-read, the touch completes without a kill
    // -- just slower by at least the disk fetch.
    EXPECT_FALSE(tr.sigbus);
    EXPECT_GE(tr.cost,
              KernelParams{}.memoryFailureCycles +
                  KernelParams{}.diskReadCyclesPerPage);
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.hwpoisonUe, 1u);
    EXPECT_EQ(vm.hwpoisonCacheDropped, 1u);
    EXPECT_EQ(vm.hwpoisonSigbus, 0u);
    EXPECT_EQ(vm.hwpoisonFramesRetired, 1u);

    const PageMeta *meta = kern.pageMeta(vpn);
    ASSERT_NE(meta, nullptr);  // Remapped by the re-read.
    EXPECT_TRUE(meta->present);
    EXPECT_NE(meta->frame, old_frame);
    EXPECT_TRUE(phys.dram().isRetired(old_frame));

    InvariantChecker checker(kern);
    checker.checkNow(t + 1);
}

TEST_F(FaultKernelTest, SoftOfflineFallsBackToNvmWhenDramIsFull)
{
    // Fill DRAM completely so the home tier has no healthy free frame;
    // the soft offline must fall back to NVM rather than fail.
    // First-touch placement keeps a watermark reserve of free DRAM, so
    // drain that reserve through the allocator directly.
    const Addr big = populate(kDramPages);
    const PageNum vpn = pageOf(big);
    std::vector<FrameNum> drained;
    while (auto f = phys.dram().allocate(FrameOwner::App))
        drained.push_back(*f);
    ASSERT_EQ(phys.dram().freePages(), 0u);

    FaultInjector inj(FaultPlan::parseOrDie("ecc_ce:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);
    for (int i = 0; i < 3; ++i)
        kern.touchPage(vpn, t + i, MemOp::Load);

    EXPECT_EQ(kern.vmstat().hwpoisonSoftOffline, 1u);
    const PageMeta *meta = kern.pageMeta(vpn);
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->node, MemNode::NVM);

    // Return the drained reserve so frame conservation holds again.
    for (const FrameNum f : drained)
        phys.dram().free(f, FrameOwner::App);
    InvariantChecker checker(kern);
    checker.checkNow(t + 4);
}

TEST_F(FaultKernelTest, OfflineStormTripsTheBreaker)
{
    const Addr base = populate(16);
    FaultInjector inj(FaultPlan::parseOrDie("ecc_ue:p=1"));
    kern.setFaultInjector(&inj);

    // Each UE is a hard offline recorded as a migration failure: eight
    // of them in one burst cross the breaker's minimum-attempts floor
    // at rate 1.0. (One timestamp for the whole storm: spreading the
    // records over cycles decays the attempt window fractionally below
    // the floor.)
    const Cycles t = secondsToCycles(0.01);
    for (std::uint64_t i = 0; i < 8; ++i) {
        const TouchResult tr =
            kern.touchPage(pageOf(base) + i, t, MemOp::Load);
        EXPECT_TRUE(tr.sigbus);
    }
    EXPECT_EQ(kern.vmstat().hwpoisonSigbus, 8u);
    EXPECT_GE(kern.vmstat().breakerTrips, 1u);
    EXPECT_TRUE(kern.migrationBreaker().isOpen(t + 8));

    InvariantChecker checker(kern);
    checker.checkNow(t + 9);
}

TEST(FaultThp, UncorrectableSplitsHugeMappingBeforeRetiring)
{
    // A UE on one 4 KiB subframe of a PMD mapping must poison only
    // that frame: the kernel splits the mapping first (as Linux
    // memory_failure() does) and the other 511 pages stay mapped.
    KernelParams kp;
    kp.thp.enabled = true;
    kp.thp.faultAlloc = true;
    PhysicalMemory phys(makeDramParams(2 * kPagesPerHuge * kPageSize),
                        makeNvmParams(8 * kPagesPerHuge * kPageSize));
    Kernel kern(phys, kp);

    const Addr a = kern.mmap(0, kHugePageSize, 0, "huge");
    const PageNum base = pageOf(a);
    kern.touchPage(base, 1000, MemOp::Store);
    ASSERT_EQ(kern.vmstat().thpFaultAlloc, 1u);
    ASSERT_TRUE(kern.isHugeMapped(base));

    FaultInjector inj(FaultPlan::parseOrDie("ecc_ue:p=1"));
    kern.setFaultInjector(&inj);
    const Cycles t = secondsToCycles(0.01);
    const TouchResult tr = kern.touchPage(base + 5, t, MemOp::Load);

    EXPECT_TRUE(tr.sigbus);
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.thpSplitPage, 1u);
    EXPECT_EQ(vm.hwpoisonUe, 1u);
    EXPECT_EQ(vm.hwpoisonSigbus, 1u);
    EXPECT_EQ(vm.hwpoisonFramesRetired, 1u);  // One frame, not 512.
    EXPECT_EQ(phys.dram().retiredPages(), 1u);
    EXPECT_FALSE(kern.isHugeMapped(base));
    EXPECT_EQ(kern.pageMeta(base + 5), nullptr);
    for (std::uint64_t i = 0; i < kPagesPerHuge; ++i) {
        if (i == 5)
            continue;
        const PageMeta *meta = kern.pageMeta(base + i);
        ASSERT_NE(meta, nullptr) << i;
        EXPECT_TRUE(meta->present) << i;
    }

    InvariantChecker checker(kern);
    checker.checkNow(t + 1);
}

// -------------------------------------------------- Engine integration

TEST(FaultEngine, NoInjectorConstructedWithoutPlan)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(64 * kPageSize);
    cfg.nvm = makeNvmParams(256 * kPageSize);
    Engine eng(cfg);
    EXPECT_EQ(eng.faultInjector(), nullptr);
    // The chaos CI stage forces the checker on via the environment, so
    // only assert its absence when that override is not active.
    const char *forced = std::getenv("MEMTIER_CHECK_INVARIANTS");
    if (forced == nullptr || forced[0] == '\0') {
        EXPECT_EQ(eng.invariantChecker(), nullptr);
    }
}

TEST(FaultEngine, InjectorAndCheckerConstructedOnDemand)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(64 * kPageSize);
    cfg.nvm = makeNvmParams(256 * kPageSize);
    cfg.faults = FaultPlan::parseOrDie("nvmlat:p=0.5,extra_ns=200");
    cfg.checkInvariants = true;
    Engine eng(cfg);
    EXPECT_NE(eng.faultInjector(), nullptr);
    EXPECT_NE(eng.invariantChecker(), nullptr);
}

// ----------------------------------------------------------- End-to-end

RunConfig
faultyConfig(const std::string &plan)
{
    RunConfig rc;
    rc.workload.app = App::BFS;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 13;
    rc.workload.trials = 4;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    rc.sys.autonuma.rateLimitBytesPerSec = 4 * kMiB;
    if (!plan.empty())
        rc.sys.faults = FaultPlan::parseOrDie(plan);
    return rc;
}

TEST(FaultEndToEnd, SameSeedReplaysBitIdentically)
{
    const RunConfig rc =
        faultyConfig("migrate:p=0.1,burst=4;alloc:p=0.02;seed=42");
    const RunResult a = runWorkload(rc);
    const RunResult b = runWorkload(rc);
    EXPECT_EQ(std::memcmp(&a.vmstat, &b.vmstat, sizeof(VmStat)), 0);
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_GT(a.faultsInjected, 0u);

    const RunResult c = runWorkload(
        faultyConfig("migrate:p=0.1,burst=4;alloc:p=0.02;seed=43"));
    EXPECT_NE(std::memcmp(&a.vmstat, &c.vmstat, sizeof(VmStat)), 0);
}

TEST(FaultEndToEnd, InvariantCheckerIsObserverOnly)
{
    RunConfig rc = faultyConfig("");
    const RunResult plain = runWorkload(rc);
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 64;
    const RunResult checked = runWorkload(rc);

    // Enabling the checker must not perturb the simulation at all.
    EXPECT_EQ(std::memcmp(&plain.vmstat, &checked.vmstat,
                          sizeof(VmStat)),
              0);
    EXPECT_EQ(plain.outputChecksum, checked.outputChecksum);
    EXPECT_DOUBLE_EQ(plain.totalSeconds, checked.totalSeconds);
    EXPECT_GT(checked.invariantChecksRun, 0u);

    // With no plan there is no injector and no injection-only counters.
    EXPECT_EQ(plain.faultsInjected, 0u);
    EXPECT_EQ(plain.vmstat.promoteRetry, 0u);
    EXPECT_EQ(plain.vmstat.pgallocFail, 0u);
    EXPECT_EQ(plain.vmstat.diskReadRetry, 0u);
    EXPECT_EQ(plain.vmstat.breakerTrips, 0u);
    EXPECT_EQ(plain.vmstat.promotePaused, 0u);
}

TEST(FaultEndToEnd, BfsSurvivesTwentyPercentMigrationFailures)
{
    // The acceptance scenario: a 20% transient migration-failure plan
    // with bursts of 8. The workload must complete with the same output
    // as a fault-free run, the breaker must trip at least once, and the
    // invariant checker must stay green throughout.
    const RunResult clean = runWorkload(faultyConfig(""));
    RunConfig rc = faultyConfig("migrate:p=0.2,burst=8;seed=7");
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 256;
    const RunResult r = runWorkload(rc);

    EXPECT_EQ(r.outputChecksum, clean.outputChecksum);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.vmstat.pgmigrateFail, 0u);
    EXPECT_GE(r.vmstat.breakerTrips, 1u);
    EXPECT_GT(r.vmstat.promotePaused, 0u);
    EXPECT_GT(r.invariantChecksRun, 0u);
}

TEST(FaultEndToEnd, NoEccPlanLeavesHwpoisonCountersZero)
{
    // Bit-identity contract: with the ECC points disabled nothing in
    // the memory-failure subsystem may run.
    const RunResult r = runWorkload(faultyConfig(""));
    EXPECT_EQ(r.vmstat.hwpoisonCe, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonUe, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonSoftOffline, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonSoftOfflineFail, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonSigbus, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonCacheDropped, 0u);
    EXPECT_EQ(r.vmstat.hwpoisonFramesRetired, 0u);
    EXPECT_EQ(r.finalNumastat.retiredPages[0], 0u);
    EXPECT_EQ(r.finalNumastat.retiredPages[1], 0u);
    EXPECT_EQ(r.iterationsAborted, 0u);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(FaultEndToEnd, EccPlanReplaysBitIdenticallyUnderInvariants)
{
    // The acceptance scenario for the memory-failure subsystem: an ECC
    // chaos plan heavy enough to retire frames and kill iterations must
    // replay bit-identically (identical vmstat, identical checksum)
    // with the invariant checker proving no poisoned frame is ever
    // mapped or re-allocated.
    RunConfig rc =
        faultyConfig("ecc_ce:p=0.05;ecc_ue:p=0.01;seed=42");
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 128;
    const RunResult a = runWorkload(rc);
    const RunResult b = runWorkload(rc);

    EXPECT_EQ(std::memcmp(&a.vmstat, &b.vmstat, sizeof(VmStat)), 0);
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.iterationsAborted, b.iterationsAborted);

    EXPECT_GT(a.vmstat.hwpoisonCe, 0u);
    EXPECT_GT(a.vmstat.hwpoisonUe, 0u);
    EXPECT_GT(a.vmstat.hwpoisonFramesRetired, 0u);
    EXPECT_EQ(a.vmstat.hwpoisonSoftOffline + a.vmstat.hwpoisonSigbus +
                  a.vmstat.hwpoisonCacheDropped,
              a.vmstat.hwpoisonFramesRetired);
    EXPECT_EQ(a.finalNumastat.retiredPages[0] +
                  a.finalNumastat.retiredPages[1],
              a.vmstat.hwpoisonFramesRetired);
    EXPECT_GT(a.invariantChecksRun, 0u);
    EXPECT_EQ(a.iterationsTotal, 4u);  // BFS trials.
    EXPECT_LE(a.availability(), 1.0);
}

TEST(FaultEndToEnd, ServingReportsAvailabilityUnderEcc)
{
    RunConfig rc;
    rc.workload.app = App::KV;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.policy = "autonuma";
    rc.sampling = false;
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 256;
    rc.sys.faults = FaultPlan::parseOrDie("ecc_ue:p=0.05;seed=7");
    const RunResult r = runWorkload(rc);

    ASSERT_TRUE(r.hasServing);
    // Every SIGBUS in the serve phase failed exactly one request (the
    // prefill runs before request accounting, so <=), and the report's
    // availability reflects the failures.
    EXPECT_GT(r.serving.errors, 0u);
    EXPECT_LE(r.serving.errors, r.vmstat.hwpoisonSigbus);
    EXPECT_LT(r.serving.availability(), 1.0);
    EXPECT_EQ(r.iterationsAborted, r.serving.errors);
    EXPECT_GT(r.invariantChecksRun, 0u);

    // Failure handling is deterministic, like everything else.
    const RunResult again = runWorkload(rc);
    EXPECT_EQ(again.serving.errors, r.serving.errors);
    EXPECT_EQ(again.outputChecksum, r.outputChecksum);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Tests for the batched access pipeline: translation-epoch bumps on
 * every remap class, micro-cache staleness rejection, the invariant-
 * checker audit of per-thread translation caches, and the golden
 * scalar-vs-batched bit-identity of whole workload runs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "exp/runner.h"
#include "os/kernel.h"
#include "os/physical_memory.h"
#include "sim/engine.h"
#include "sim/translation_cache.h"

namespace memtier {
namespace {

/** Shootdown sink for kernel-level tests (engine not involved). */
class NullShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum) override {}
    void tlbShootdownHuge(PageNum) override {}
};

// ------------------------------------------ Translation epoch funnel
//
// Every remap class must bump Kernel::translationEpoch(): the micro-
// cache's correctness rests on "epoch unchanged => cached translation
// still valid", so an un-bumped remap would silently serve stale nodes.

class EpochTest : public ::testing::Test
{
  protected:
    EpochTest()
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, KernelParams{})
    {
        kern.setShootdownClient(&shootdown);
    }

    /** Touch every page of [start, start+pages) once. */
    void
    touchRange(Addr start, std::uint64_t pages, Cycles now = 1000)
    {
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(start) + i, now + i, MemOp::Store);
    }

    /** First NVM-resident page of the region at @p start, or kNoPage. */
    PageNum
    findNvmPage(Addr start, std::uint64_t pages) const
    {
        for (std::uint64_t i = 0; i < pages; ++i) {
            const PageNum vpn = pageOf(start) + i;
            const PageMeta *meta = kern.pageMeta(vpn);
            if (meta != nullptr && meta->present &&
                meta->node == MemNode::NVM) {
                return vpn;
            }
        }
        return kNoPage;
    }

    static constexpr std::uint64_t kDramPages = 256;
    static constexpr std::uint64_t kNvmPages = 4096;

    PhysicalMemory phys;
    NullShootdown shootdown;
    Kernel kern;
};

TEST_F(EpochTest, MunmapBumpsEpoch)
{
    const Addr a = kern.mmap(0, 8 * kPageSize, 0, "obj");
    touchRange(a, 8);
    const std::uint64_t before = kern.translationEpoch();
    kern.munmap(5000, a);
    EXPECT_GT(kern.translationEpoch(), before);
}

TEST_F(EpochTest, PromotionBumpsEpoch)
{
    // Overcommit DRAM so first touches spill to NVM.
    const std::uint64_t pages = kDramPages + 64;
    const Addr a = kern.mmap(0, pages * kPageSize, 0, "big");
    touchRange(a, pages);
    const PageNum nvm_vpn = findNvmPage(a, pages);
    ASSERT_NE(nvm_vpn, kNoPage);

    const std::uint64_t before = kern.translationEpoch();
    ASSERT_GT(kern.promotePage(nvm_vpn, 500000), 0u);
    EXPECT_EQ(kern.nodeOf(nvm_vpn), MemNode::DRAM);
    EXPECT_GT(kern.translationEpoch(), before);
}

TEST_F(EpochTest, KswapdDemotionBumpsEpoch)
{
    // Fill DRAM past the low watermark, then let kswapd demote.
    const std::uint64_t pages = kDramPages;
    const Addr a = kern.mmap(0, pages * kPageSize, 0, "big");
    touchRange(a, pages);
    const std::uint64_t before = kern.translationEpoch();
    const std::uint64_t demoted_before = kern.vmstat().pgdemoteKswapd;
    kern.kswapdTick(500000);
    ASSERT_GT(kern.vmstat().pgdemoteKswapd, demoted_before);
    EXPECT_GT(kern.translationEpoch(), before);
}

TEST_F(EpochTest, ExchangeBumpsEpoch)
{
    const std::uint64_t pages = kDramPages + 64;
    const Addr a = kern.mmap(0, pages * kPageSize, 0, "big");
    touchRange(a, pages);
    const PageNum nvm_vpn = findNvmPage(a, pages);
    ASSERT_NE(nvm_vpn, kNoPage);
    const PageNum victim = kern.pickExchangeVictim(600000);
    ASSERT_NE(victim, kNoPage);

    const std::uint64_t before = kern.translationEpoch();
    ASSERT_GT(kern.exchangePages(nvm_vpn, victim, 600000), 0u);
    EXPECT_GT(kern.translationEpoch(), before);
}

TEST_F(EpochTest, ThpCollapseAndSplitBumpEpoch)
{
    // A THP-enabled kernel on tiers big enough for 2 MiB frames.
    KernelParams kp;
    kp.thp.enabled = true;
    PhysicalMemory big_phys(
        makeDramParams(4 * kPagesPerHuge * kPageSize),
        makeNvmParams(16 * kPagesPerHuge * kPageSize));
    Kernel thp_kern(big_phys, kp);
    NullShootdown sink;
    thp_kern.setShootdownClient(&sink);

    const Addr a =
        thp_kern.mmap(0, 2 * kPagesPerHuge * kPageSize, 0, "huge");
    PageNum base = pageOf(a);
    if (!isHugeBase(base))
        base = hugeBaseOf(base) + kPagesPerHuge;
    for (std::uint64_t i = 0; i < kPagesPerHuge; ++i)
        thp_kern.touchPage(base + i, 1000 + i, MemOp::Store);

    if (!thp_kern.isHugeMapped(base)) {
        const std::uint64_t before = thp_kern.translationEpoch();
        ASSERT_EQ(thp_kern.collapseHugePage(base, 400000),
                  CollapseResult::Collapsed);
        EXPECT_GT(thp_kern.translationEpoch(), before);
    }
    ASSERT_TRUE(thp_kern.isHugeMapped(base));

    const std::uint64_t before_split = thp_kern.translationEpoch();
    thp_kern.splitHugePage(base, 500000);
    EXPECT_FALSE(thp_kern.isHugeMapped(base));
    EXPECT_GT(thp_kern.translationEpoch(), before_split);

    const std::uint64_t before_collapse = thp_kern.translationEpoch();
    if (thp_kern.collapseHugePage(base, 600000) ==
        CollapseResult::Collapsed) {
        EXPECT_GT(thp_kern.translationEpoch(), before_collapse);
    }
}

TEST_F(EpochTest, TranslateAgreesWithPageMeta)
{
    const Addr a = kern.mmap(0, 4 * kPageSize, 0, "obj");
    touchRange(a, 4);
    for (std::uint64_t i = 0; i < 4; ++i) {
        const PageNum vpn = pageOf(a) + i;
        const Translation tr = kern.translate(vpn);
        ASSERT_TRUE(tr.present);
        EXPECT_FALSE(tr.huge);
        EXPECT_EQ(tr.node, kern.nodeOf(vpn));
        EXPECT_EQ(tr.epoch, kern.translationEpoch());
    }
    EXPECT_FALSE(kern.translate(pageOf(a) + 1000).present);
}

// --------------------------------------------- Micro-cache semantics

TEST(TranslationMicroCache, RejectsStaleEpoch)
{
    TranslationMicroCache cache;
    cache.insert(42, /*epoch=*/5, MemNode::NVM, false);

    const auto *hit = cache.lookup(42, 5);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->node, MemNode::NVM);

    // Any remap bumps the kernel epoch; the entry must stop matching.
    EXPECT_EQ(cache.lookup(42, 6), nullptr);
}

TEST(TranslationMicroCache, DirectMappedConflictEvicts)
{
    TranslationMicroCache cache;
    cache.insert(7, 1, MemNode::DRAM, false);
    const PageNum alias = 7 + TranslationMicroCache::kEntries;
    cache.insert(alias, 1, MemNode::NVM, true);

    EXPECT_EQ(cache.lookup(7, 1), nullptr);
    const auto *hit = cache.lookup(alias, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->node, MemNode::NVM);
    EXPECT_TRUE(hit->huge);
}

TEST(TranslationMicroCache, ClearDropsEverything)
{
    TranslationMicroCache cache;
    cache.insert(1, 1, MemNode::DRAM, false);
    cache.insert(2, 1, MemNode::DRAM, false);
    cache.clear();
    EXPECT_EQ(cache.lookup(1, 1), nullptr);
    EXPECT_EQ(cache.lookup(2, 1), nullptr);
}

// The engine-level staleness path: accesses populate the micro-cache,
// a munmap/remap bumps the epoch, and subsequent accesses must
// re-derive translations instead of serving the dead mapping. The
// invariant checker's audit cross-checks every live cache entry
// against the page table.
TEST(MicroCacheEngine, RemapInvalidatesAndAuditStaysGreen)
{
    SystemConfig cfg;
    cfg.numThreads = 2;
    cfg.checkInvariants = true;
    Engine eng(cfg);
    ThreadContext &t0 = eng.thread(0);

    const Addr a = eng.sysMmap(t0, 64 * kPageSize, 0, "obj");
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < 64; ++i)
            eng.load(t0, a + i * kPageSize);
    }
    ASSERT_NE(eng.invariantChecker(), nullptr);
    eng.invariantChecker()->checkNow(eng.globalTime());

    eng.sysMunmap(t0, a);
    const Addr b = eng.sysMmap(t0, 64 * kPageSize, 1, "obj2");
    for (std::uint64_t i = 0; i < 64; ++i)
        eng.store(t0, b + i * kPageSize);
    eng.invariantChecker()->checkNow(eng.globalTime());
}

// --------------------------------- Scalar vs batched golden identity
//
// The contract of the whole pipeline: forcing the reference scalar
// path must not change ANY simulated observable -- vmstat, timeline,
// level counts, application output, simulated time. Only host-side
// wall-clock may differ.

RunConfig
hotpathConfig(App app)
{
    RunConfig rc;
    rc.workload.app = app;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.sampling = true;  // Observer records must match too.
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    return rc;
}

void
expectBitIdentical(const RunResult &batched, const RunResult &scalar)
{
    // Simulated time and output.
    EXPECT_EQ(batched.totalSeconds, scalar.totalSeconds);
    EXPECT_EQ(batched.loadSeconds, scalar.loadSeconds);
    EXPECT_EQ(batched.outputChecksum, scalar.outputChecksum);
    EXPECT_EQ(batched.totalAccesses, scalar.totalAccesses);

    // Every vmstat counter (plain uint64 struct).
    EXPECT_EQ(std::memcmp(&batched.vmstat, &scalar.vmstat,
                          sizeof(VmStat)),
              0);

    // perf-mem attribution per level.
    for (int l = 0; l < kNumMemLevels; ++l)
        EXPECT_EQ(batched.levelCounts[l], scalar.levelCounts[l]);

    // Sampled records: the batch observer dispatch must deliver the
    // exact records the per-element dispatch did.
    ASSERT_EQ(batched.samples.size(), scalar.samples.size());
    for (std::size_t i = 0; i < batched.samples.size(); ++i) {
        EXPECT_EQ(batched.samples[i].time, scalar.samples[i].time);
        EXPECT_EQ(batched.samples[i].vaddr, scalar.samples[i].vaddr);
        EXPECT_EQ(batched.samples[i].latency,
                  scalar.samples[i].latency);
        EXPECT_EQ(batched.samples[i].level, scalar.samples[i].level);
        EXPECT_EQ(batched.samples[i].tlbMiss,
                  scalar.samples[i].tlbMiss);
    }

    // The machine-wide timeline, point by point.
    ASSERT_EQ(batched.timeline.size(), scalar.timeline.size());
    for (std::size_t i = 0; i < batched.timeline.size(); ++i) {
        const TimelinePoint &bp = batched.timeline[i];
        const TimelinePoint &sp = scalar.timeline[i];
        EXPECT_EQ(bp.sec, sp.sec);
        EXPECT_EQ(bp.cpuUtil, sp.cpuUtil);
        EXPECT_EQ(std::memcmp(&bp.vm, &sp.vm, sizeof(VmStat)), 0);
        for (int n = 0; n < kNumNodes; ++n) {
            EXPECT_EQ(bp.numa.appPages[n], sp.numa.appPages[n]);
            EXPECT_EQ(bp.numa.cachePages[n], sp.numa.cachePages[n]);
            EXPECT_EQ(bp.numa.freePages[n], sp.numa.freePages[n]);
        }
    }
}

TEST(HotpathGolden, BfsScalarAndBatchedBitIdentical)
{
    RunConfig rc = hotpathConfig(App::BFS);
    const RunResult batched = runWorkload(rc);
    rc.sys.scalarPath = true;
    const RunResult scalar = runWorkload(rc);
    expectBitIdentical(batched, scalar);
}

TEST(HotpathGolden, PageRankScalarAndBatchedBitIdentical)
{
    RunConfig rc = hotpathConfig(App::PR);
    const RunResult batched = runWorkload(rc);
    rc.sys.scalarPath = true;
    const RunResult scalar = runWorkload(rc);
    expectBitIdentical(batched, scalar);
}

// ------------------------------------------------------- Chaos sweep
//
// The batched path under continuous invariant checking (including the
// micro-cache audit) and a lossy migration plan: heavy remap traffic
// with failures must never leave a cache entry disagreeing with the
// page table.
TEST(HotpathChaos, BatchedPathSurvivesFaultyMigrations)
{
    RunConfig rc = hotpathConfig(App::PR);
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 512;
    auto &migrate = rc.sys.faults.at(FaultPoint::Migration);
    migrate.probability = 0.1;
    migrate.burstLength = 6;
    rc.sys.faults.seed = 97;

    const RunResult r = runWorkload(rc);
    EXPECT_GT(r.invariantChecksRun, 0u);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.vmstat.pgmigrateFail, 0u);
}

}  // namespace
}  // namespace memtier

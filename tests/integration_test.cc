/**
 * @file
 * End-to-end integration tests: full workload runs through the
 * experiment runner, checking the paper's qualitative findings at a
 * reduced scale (so the whole suite stays fast).
 */

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "profile/analysis.h"

namespace memtier {
namespace {

/** Reduced-scale machine + workload that still exceeds DRAM. */
RunConfig
smallConfig(App app, GraphKind kind)
{
    RunConfig rc;
    rc.workload.app = app;
    rc.workload.kind = kind;
    rc.workload.scale = 15;
    rc.workload.trials = app == App::BC ? 2 : (app == App::CC ? 1 : 2);
    // Tier sizes chosen so the ~10 MiB footprint exceeds DRAM, like the
    // paper's 228-292 GB vs. 192 GB.
    rc.sys.dram = makeDramParams(1792 * kPageSize);  // 7 MiB.
    rc.sys.nvm = makeNvmParams(7168 * kPageSize);    // 28 MiB.
    rc.sampler.period = 31;
    return rc;
}

/** Shared fixture: one AutoNUMA bc_kron run reused by many checks. */
class BcKronRun : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        RunConfig rc = smallConfig(App::BC, GraphKind::Kron);
        result = new RunResult(runWorkload(rc));
    }

    static void
    TearDownTestSuite()
    {
        delete result;
        result = nullptr;
    }

    static RunResult *result;
};

RunResult *BcKronRun::result = nullptr;

TEST_F(BcKronRun, RunsAndSamples)
{
    EXPECT_GT(result->totalSeconds, 0.0);
    EXPECT_GT(result->loadSeconds, 0.0);
    EXPECT_LT(result->loadSeconds, result->totalSeconds);
    EXPECT_GT(result->samples.size(), 1000u);
    EXPECT_GT(result->totalAccesses, 100000u);
}

TEST_F(BcKronRun, ExternalAccessesOnBothTiers)
{
    const ExternalSplit es = externalSplit(result->samples);
    EXPECT_GT(es.externalSamples, 0u);
    EXPECT_GT(es.dramFrac, 0.0);
    EXPECT_GT(es.nvmFrac, 0.0);
}

TEST_F(BcKronRun, MostPagesTouchedOnce)
{
    // Section 5.2: the single-touch bucket dominates.
    const TouchBuckets tb = pageTouchBuckets(result->samples);
    // At the reduced integration scale the hot vertex arrays are a
    // larger share of the footprint than at bench scale, so the
    // single-touch share is lower than the paper's 33-80% band; the
    // full-scale check lives in bench/fig04_page_touches.
    EXPECT_GT(tb.pagesFrac[0], tb.pagesFrac[1]);
    EXPECT_GT(tb.pagesFrac[0], 0.15);
}

TEST_F(BcKronRun, NvmCostlierThanItsAccessShare)
{
    // Table 2's point: NVM cost share exceeds NVM access share.
    const ExternalSplit es = externalSplit(result->samples);
    const CostSplit cs = externalCostSplit(result->samples);
    EXPECT_GT(cs.nvmCostFrac, es.nvmFrac);
}

TEST_F(BcKronRun, TlbMissesCostMore)
{
    // Table 3's shape, on whichever cells have samples.
    const TlbCostMatrix m = tlbCostMatrix(result->samples);
    if (m.count[1][0] > 100 && m.count[1][1] > 100) {
        EXPECT_GT(m.mean[1][1], m.mean[1][0]);
    }
    if (m.count[1][1] > 100 && m.count[0][1] > 100) {
        EXPECT_GT(m.mean[1][1], m.mean[0][1]);
    }
}

TEST_F(BcKronRun, DemotionsExceedPromotions)
{
    // Figure 9: kswapd demotion dominates promotions.
    EXPECT_GT(result->vmstat.pgdemoteKswapd, 0u);
    EXPECT_GT(result->vmstat.pgdemoteKswapd,
              result->vmstat.pgpromoteSuccess);
}

TEST_F(BcKronRun, PageCacheGrowsThenYields)
{
    // Finding 5: the input-reading phase fills the page cache on DRAM;
    // reclaim later demotes it to NVM.
    double peak_dram_cache = 0.0;
    for (const auto &p : result->timeline) {
        peak_dram_cache = std::max(
            peak_dram_cache, static_cast<double>(p.numa.cachePages[0]));
    }
    EXPECT_GT(peak_dram_cache, 0.0);
    const auto &last = result->timeline.back();
    EXPECT_LT(static_cast<double>(last.numa.cachePages[0]),
              peak_dram_cache);
    EXPECT_GT(last.numa.cachePages[1], 0u);
}

TEST_F(BcKronRun, CpuUtilLowDuringLoadHighDuringCompute)
{
    // Figure 9 bottom: single-threaded read phase, parallel compute.
    double early = 1.0;
    double late = 0.0;
    for (const auto &p : result->timeline) {
        if (p.sec < result->loadSeconds * 0.8)
            early = std::min(early, p.cpuUtil);
        if (p.sec > result->loadSeconds)
            late = std::max(late, p.cpuUtil);
    }
    EXPECT_LT(early, 0.2);
    EXPECT_GT(late, 0.9);
}

TEST_F(BcKronRun, AllocationChurnVisible)
{
    // Figure 7: per-source BC arrays allocate and free repeatedly.
    const TimeSeries live = result->tracker.liveBytesSeries();
    EXPECT_GT(live.size(), 10u);
    // Live bytes must go down at least once (frees happen mid-run).
    bool decreased = false;
    for (std::size_t i = 1; i < live.points().size(); ++i) {
        if (live.points()[i].value < live.points()[i - 1].value)
            decreased = true;
    }
    EXPECT_TRUE(decreased);
}

TEST_F(BcKronRun, FewObjectsConcentrateNvmAccesses)
{
    // Finding 2: a handful of objects hold most NVM samples.
    auto counts = objectAccessCounts(result->samples, result->tracker);
    std::uint64_t total_nvm = 0;
    std::uint64_t best = 0;
    for (const auto &c : counts) {
        total_nvm += c.nvmSamples;
        best = std::max(best, c.nvmSamples);
    }
    ASSERT_GT(total_nvm, 0u);
    EXPECT_GT(static_cast<double>(best) /
                  static_cast<double>(total_nvm),
              0.3);
}

TEST_F(BcKronRun, PromotionsAreRare)
{
    // Findings 6/7: promotions are a small fraction of footprint.
    const std::uint64_t footprint_pages =
        roundUpPages(static_cast<std::uint64_t>(
            result->tracker.liveBytesSeries().max()));
    EXPECT_LT(result->vmstat.pgpromoteSuccess, footprint_pages / 4);
}

// ------------------------------------------------ Cross-mode invariants

TEST(Modes, ChecksumIdenticalAcrossPlacements)
{
    RunConfig rc = smallConfig(App::BFS, GraphKind::Urand);
    rc.sampling = false;
    const RunResult a = runWorkload(rc);

    RunConfig rc2 = rc;
    rc2.mode = Mode::AllNvm;
    const RunResult b = runWorkload(rc2);

    RunConfig rc3 = rc;
    rc3.mode = Mode::AllDram;
    const RunResult c = runWorkload(rc3);

    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_EQ(a.outputChecksum, c.outputChecksum);
}

TEST(Modes, AllDramFasterThanAllNvm)
{
    RunConfig rc = smallConfig(App::BFS, GraphKind::Kron);
    rc.sampling = false;
    RunConfig dram_cfg = rc;
    dram_cfg.mode = Mode::AllDram;
    RunConfig nvm_cfg = rc;
    nvm_cfg.mode = Mode::AllNvm;
    const RunResult dram = runWorkload(dram_cfg);
    const RunResult nvm = runWorkload(nvm_cfg);
    EXPECT_LT(dram.totalSeconds, nvm.totalSeconds);
}

TEST(Modes, NoTieringNeverMigrates)
{
    // Section 6.6: with AutoNUMA disabled every counter's delta is 0.
    RunConfig rc = smallConfig(App::CC, GraphKind::Urand);
    rc.mode = Mode::NoTiering;
    rc.sampling = false;
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.vmstat.pgpromoteSuccess, 0u);
    EXPECT_EQ(r.vmstat.pgdemoteKswapd, 0u);
    EXPECT_EQ(r.vmstat.pgdemoteDirect, 0u);
    EXPECT_EQ(r.vmstat.pgmigrateSuccess, 0u);
    EXPECT_EQ(r.vmstat.numaHintFaults, 0u);
}

TEST(Modes, ObjectStaticReducesNvmSamplesAndTime)
{
    // The headline result (Figure 11) at reduced scale.
    RunConfig rc = smallConfig(App::BC, GraphKind::Kron);
    const RunResult base = runWorkload(rc);
    const PlacementPlan plan =
        planFromProfile(base, rc.sys.dram.capacityBytes, false);

    RunConfig rc2 = rc;
    rc2.mode = Mode::ObjectStatic;
    const RunResult obj = runWorkload(rc2, &plan);

    EXPECT_EQ(base.outputChecksum, obj.outputChecksum);
    const ExternalSplit es_base = externalSplit(base.samples);
    const ExternalSplit es_obj = externalSplit(obj.samples);
    const double nvm_base =
        es_base.nvmFrac * static_cast<double>(es_base.externalSamples);
    const double nvm_obj =
        es_obj.nvmFrac * static_cast<double>(es_obj.externalSamples);
    EXPECT_LT(nvm_obj, nvm_base);
    EXPECT_LT(obj.totalSeconds, base.totalSeconds * 1.05);
    // Static mapping performs no migrations at all for bound pages.
    EXPECT_LT(obj.vmstat.pgpromoteSuccess + 1,
              base.vmstat.pgpromoteSuccess + 2);
}

TEST(Modes, SpillPlanUsesLeftoverDram)
{
    RunConfig rc = smallConfig(App::CC, GraphKind::Kron);
    const RunResult base = runWorkload(rc);
    const PlacementPlan whole =
        planFromProfile(base, rc.sys.dram.capacityBytes, false);
    const PlacementPlan spill =
        planFromProfile(base, rc.sys.dram.capacityBytes, true);

    // The spill plan must bind at least as many DRAM pages.
    auto dram_pages = [](const PlacementPlan &p) {
        std::uint64_t pages = 0;
        for (const auto &[site, pol] : p.entries()) {
            if (pol.mode == MemPolicy::Mode::Split)
                pages += pol.dramPages;
        }
        return pages;
    };
    EXPECT_GE(dram_pages(spill), dram_pages(whole));
}

TEST(Runner, DeterministicAcrossRuns)
{
    RunConfig rc = smallConfig(App::BFS, GraphKind::Kron);
    const RunResult a = runWorkload(rc);
    const RunResult b = runWorkload(rc);
    EXPECT_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.samples.size(), b.samples.size());
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_EQ(a.vmstat.pgpromoteSuccess, b.vmstat.pgpromoteSuccess);
}

TEST(Runner, WorkloadNamesMatchPaper)
{
    const auto workloads = paperWorkloads(14);
    ASSERT_EQ(workloads.size(), 6u);
    EXPECT_EQ(workloads[0].name(), "bc_kron");
    EXPECT_EQ(workloads[1].name(), "bc_urand");
    EXPECT_EQ(workloads[5].name(), "cc_urand");
}

}  // namespace
}  // namespace memtier

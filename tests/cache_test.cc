/**
 * @file
 * Unit tests for the cache substrate: set-associative caches, two-level
 * TLB and the line-fill buffer.
 */

#include <gtest/gtest.h>

#include "cache/line_fill_buffer.h"
#include "cache/set_assoc_cache.h"
#include "cache/tlb.h"

namespace memtier {
namespace {

// -------------------------------------------------------- SetAssocCache

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c("L1", 4 * kKiB, 4);
    EXPECT_FALSE(c.access(100, false));
    c.insert(100, false);
    EXPECT_TRUE(c.access(100, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEviction)
{
    // 2-way, line addresses chosen to map to set 0.
    SetAssocCache c("L1", 2 * 2 * kLineSize, 2);  // 2 sets, 2 ways.
    const Addr set0_a = 0;
    const Addr set0_b = 2;
    const Addr set0_c = 4;
    c.insert(set0_a, false);
    c.insert(set0_b, false);
    // Touch a so b becomes LRU.
    EXPECT_TRUE(c.access(set0_a, false));
    const CacheEviction ev = c.insert(set0_c, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, set0_b);
    EXPECT_TRUE(c.contains(set0_a));
    EXPECT_FALSE(c.contains(set0_b));
}

TEST(SetAssocCache, DirtyEvictionSignalsWriteback)
{
    SetAssocCache c("L1", 1 * 2 * kLineSize, 2);  // 1 set, 2 ways.
    c.insert(0, true);
    c.insert(1, false);
    const CacheEviction ev = c.insert(2, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.line, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssocCache, WriteHitSetsDirty)
{
    SetAssocCache c("L1", 2 * kLineSize, 2);
    c.insert(0, false);
    EXPECT_TRUE(c.access(0, true));  // Store hit -> dirty.
    c.insert(1, false);
    const CacheEviction ev = c.insert(2, false);
    EXPECT_TRUE(ev.dirty);
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache c("L2", 4 * kKiB, 4);
    c.insert(7, false);
    EXPECT_TRUE(c.contains(7));
    c.invalidate(7);
    EXPECT_FALSE(c.contains(7));
}

TEST(SetAssocCache, ClearEmptiesEverything)
{
    SetAssocCache c("L2", 4 * kKiB, 4);
    for (Addr l = 0; l < 32; ++l)
        c.insert(l, false);
    c.clear();
    for (Addr l = 0; l < 32; ++l)
        EXPECT_FALSE(c.contains(l));
}

TEST(SetAssocCache, DistinctSetsDoNotConflict)
{
    SetAssocCache c("L1", 4 * 1 * kLineSize, 1);  // 4 sets, direct.
    c.insert(0, false);
    c.insert(1, false);
    c.insert(2, false);
    c.insert(3, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(3));
    // Same set as 0 (4 sets): line 4 evicts line 0 only.
    c.insert(4, false);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(1));
}

TEST(SetAssocCache, SizeBytesReflectsGeometry)
{
    SetAssocCache c("L3", 128 * kKiB, 16);
    EXPECT_EQ(c.sizeBytes(), 128 * kKiB);
    EXPECT_EQ(c.name(), "L3");
}

// Parameterized: a working set that fits always hits after warmup; one
// that exceeds capacity by 2x always evicts in a direct-mapped sweep.
class CacheCapacity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheCapacity, FittingWorkingSetHitsAfterWarmup)
{
    const std::uint64_t size = GetParam();
    SetAssocCache c("c", size, 8);
    const std::uint64_t lines = size / kLineSize;
    for (Addr l = 0; l < lines; ++l) {
        if (!c.access(l, false))
            c.insert(l, false);
    }
    for (Addr l = 0; l < lines; ++l)
        EXPECT_TRUE(c.access(l, false)) << "line " << l;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheCapacity,
                         ::testing::Values(4 * kKiB, 16 * kKiB,
                                           64 * kKiB, 256 * kKiB));

// ------------------------------------------------------------------ TLB

TEST(Tlb, MissThenL1Hit)
{
    Tlb tlb;
    EXPECT_EQ(tlb.lookup(5), TlbOutcome::Miss);
    EXPECT_EQ(tlb.lookup(5), TlbOutcome::L1Hit);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
}

TEST(Tlb, StlbCatchesL1Evictions)
{
    TlbParams p;
    p.l1Entries = 4;
    p.l1Ways = 4;  // Single set: 5 pages overflow L1.
    p.stlbEntries = 64;
    p.stlbWays = 4;
    Tlb tlb(p);
    for (PageNum v = 0; v < 5; ++v)
        tlb.lookup(v);
    // Page 0 fell out of L1 but must still be in the STLB.
    EXPECT_EQ(tlb.lookup(0), TlbOutcome::StlbHit);
    EXPECT_EQ(tlb.stlbHits(), 1u);
}

TEST(Tlb, InvalidateForcesMiss)
{
    Tlb tlb;
    tlb.lookup(9);
    tlb.invalidate(9);
    EXPECT_EQ(tlb.lookup(9), TlbOutcome::Miss);
}

TEST(Tlb, FlushAllForcesMisses)
{
    Tlb tlb;
    for (PageNum v = 0; v < 8; ++v)
        tlb.lookup(v);
    tlb.flushAll();
    for (PageNum v = 0; v < 8; ++v)
        EXPECT_EQ(tlb.lookup(v), TlbOutcome::Miss);
}

TEST(Tlb, CapacityMissesOnHugeWorkingSet)
{
    Tlb tlb;  // 1536-entry STLB.
    for (PageNum v = 0; v < 4096; ++v)
        tlb.lookup(v);
    // Re-walk: early pages must have been evicted from both levels.
    EXPECT_EQ(tlb.lookup(0), TlbOutcome::Miss);
}

TEST(Tlb, StlbHitCostExposed)
{
    TlbParams p;
    p.stlbHitCycles = 11;
    Tlb tlb(p);
    EXPECT_EQ(tlb.stlbHitCycles(), 11u);
}

// -------------------------------------------------------- LineFillBuffer

TEST(Lfb, TracksInFlightFills)
{
    LineFillBuffer lfb;
    lfb.add(42, 100);
    const auto rem = lfb.inFlight(42, 60);
    ASSERT_TRUE(rem.has_value());
    EXPECT_EQ(*rem, 40u);
}

TEST(Lfb, CompletedFillNotInFlight)
{
    LineFillBuffer lfb;
    lfb.add(42, 100);
    EXPECT_FALSE(lfb.inFlight(42, 100).has_value());
    EXPECT_FALSE(lfb.inFlight(42, 150).has_value());
}

TEST(Lfb, RecentlyFilledWindow)
{
    LineFillBuffer lfb;
    lfb.add(42, 100);
    EXPECT_FALSE(lfb.recentlyFilled(42, 99, 50));   // Still in flight.
    EXPECT_TRUE(lfb.recentlyFilled(42, 100, 50));
    EXPECT_TRUE(lfb.recentlyFilled(42, 149, 50));
    EXPECT_FALSE(lfb.recentlyFilled(42, 150, 50));  // Window expired.
}

TEST(Lfb, OldestEntryReplaced)
{
    LineFillBuffer lfb;
    for (Addr l = 0; l < LineFillBuffer::kEntries + 1; ++l)
        lfb.add(l, 1000);
    EXPECT_FALSE(lfb.inFlight(0, 0).has_value());  // Replaced.
    EXPECT_TRUE(lfb.inFlight(1, 0).has_value());
}

TEST(Lfb, UnknownLineNotInFlight)
{
    LineFillBuffer lfb;
    EXPECT_FALSE(lfb.inFlight(7, 0).has_value());
    EXPECT_FALSE(lfb.recentlyFilled(7, 0, 100));
}

}  // namespace
}  // namespace memtier

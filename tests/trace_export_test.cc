/**
 * @file
 * Tests for the artifact-compatible CSV trace export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "profile/trace_export.h"

namespace memtier {
namespace {

MemorySample
sample(Addr vaddr, MemLevel level, Cycles time, Cycles latency = 100)
{
    MemorySample s;
    s.vaddr = vaddr;
    s.level = level;
    s.time = time;
    s.latency = latency;
    return s;
}

TEST(TraceExport, MemoryTraceRowsAndHeader)
{
    std::vector<MemorySample> samples{
        sample(0x1000, MemLevel::DRAM, kCyclesPerSecond),
        sample(0x2000, MemLevel::L1, 2 * kCyclesPerSecond)};
    std::ostringstream out;
    EXPECT_EQ(writeMemoryTrace(out, samples), 2u);
    const std::string text = out.str();
    EXPECT_NE(text.find("timestamp_sec,tid,vaddr,level"),
              std::string::npos);
    EXPECT_NE(text.find("DRAM"), std::string::npos);
    EXPECT_NE(text.find("L1"), std::string::npos);
}

TEST(TraceExport, MmapAndMunmapTraces)
{
    MmapTracker tracker;
    tracker.onMmap(kCyclesPerSecond, 0x10000, 2 * kPageSize, 0, "a");
    tracker.onMmap(kCyclesPerSecond, 0x20000, kPageSize, 1, "b");
    tracker.onMunmap(2 * kCyclesPerSecond, 0x10000, 2 * kPageSize, 0);

    std::ostringstream mm;
    EXPECT_EQ(writeMmapTrace(mm, tracker), 2u);
    std::ostringstream um;
    EXPECT_EQ(writeMunmapTrace(um, tracker), 1u);  // Only freed ones.
    EXPECT_NE(um.str().find("\n2,0,65536,8192"), std::string::npos);
}

TEST(TraceExport, MappedSamplesSplitByNode)
{
    MmapTracker tracker;
    tracker.onMmap(0, 0x10000, 4 * kPageSize, 0, "obj");
    std::vector<MemorySample> samples{
        sample(0x10000, MemLevel::NVM, 100),
        sample(0x11000, MemLevel::DRAM, 200),
        sample(0x10040, MemLevel::NVM, 300),
        sample(0x99000, MemLevel::NVM, 400),  // Unmapped: skipped.
        sample(0x10080, MemLevel::L2, 500)};  // Cache hit: skipped.

    std::ostringstream pmem;
    EXPECT_EQ(writeMappedSamples(pmem, samples, tracker, MemNode::NVM),
              2u);
    std::ostringstream dram;
    EXPECT_EQ(writeMappedSamples(dram, samples, tracker, MemNode::DRAM),
              1u);
    // page_in_object of the DRAM sample (vaddr 0x11000) is 1.
    EXPECT_NE(dram.str().find(",1,"), std::string::npos);
}

TEST(TraceExport, AllocationsSummary)
{
    MmapTracker tracker;
    tracker.onMmap(0, 0x10000, kPageSize, 0, "live");
    tracker.onMmap(0, 0x20000, kPageSize, 1, "freed");
    tracker.onMunmap(kCyclesPerSecond, 0x20000, kPageSize, 1);
    std::ostringstream out;
    EXPECT_EQ(writeAllocations(out, tracker), 2u);
    // Live object marked with free_sec -1.
    EXPECT_NE(out.str().find("0,live,4096,0,-1"), std::string::npos);
}

TEST(TraceExport, EmptyInputsProduceHeadersOnly)
{
    MmapTracker tracker;
    std::ostringstream a;
    EXPECT_EQ(writeMemoryTrace(a, {}), 0u);
    std::ostringstream b;
    EXPECT_EQ(writeMmapTrace(b, tracker), 0u);
    EXPECT_FALSE(a.str().empty());
    EXPECT_FALSE(b.str().empty());
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Tests for the segmented/streaming CSR subsystem: segment-count-1
 * bit-identity against the monolithic loader, out-of-core determinism,
 * cross-segment traversal correctness against the host references, and
 * a chaos run with faults and invariants armed under pressured DRAM.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bfs.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "bigraph/ooc_builder.h"
#include "bigraph/segmented_csr.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sim_graph.h"
#include "runtime/sim_heap.h"

namespace memtier {
namespace {

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(1024 * kPageSize);
    cfg.nvm = makeNvmParams(4096 * kPageSize);
    return cfg;
}

CsrGraph
hostGraphFor(const BigraphSpec &spec)
{
    EdgeList edges =
        spec.kind == BigraphKind::Kron
            ? generateKron(spec.scale, spec.degree, spec.seed)
            : generateUrand(spec.scale, spec.degree, spec.seed);
    CsrGraph g = CsrGraph::fromEdgeList(
        static_cast<NodeId>(1LL << spec.scale), edges);
    if (spec.weighted)
        g.generateWeights(spec.seed ^ 0x5eed);
    return g;
}

// ----------------------------------------------------- Golden identity

TEST(SegmentedCsr, SegmentOneBitIdenticalToMonolithic)
{
    BigraphSpec spec;
    spec.scale = 12;
    spec.degree = 8;
    spec.segments = 1;
    const CsrGraph host = hostGraphFor(spec);

    // Monolithic: host graph through SimCsrGraph::load.
    Engine eng_a(testConfig());
    SimHeap heap_a(eng_a);
    SimCsrGraph mono =
        SimCsrGraph::load(eng_a, heap_a, eng_a.thread(0), host, "bg");
    const std::uint64_t load_a = eng_a.globalTime();
    const PageRankOutput pr_a = runPageRank(eng_a, heap_a, mono, 3);
    const std::uint64_t total_a = eng_a.globalTime();

    // Segmented with one segment: out-of-core build of the same spec.
    Engine eng_b(testConfig());
    SimHeap heap_b(eng_b);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng_b, heap_b, eng_b.thread(0), spec, "bg");
    const std::uint64_t load_b = eng_b.globalTime();
    const PageRankOutput pr_b =
        runPageRank(eng_b, heap_b, seg, 3);
    const std::uint64_t total_b = eng_b.globalTime();

    EXPECT_EQ(seg.segmentCount(), 1u);
    EXPECT_EQ(seg.numNodes(), host.numNodes());
    EXPECT_EQ(seg.numEdges(), host.numEdges());

    // Same simulated cycle counts for the load and the full run: the
    // one-segment build issues exactly the monolithic access sequence.
    EXPECT_EQ(load_b, load_a);
    EXPECT_EQ(total_b, total_a);

    // Same result, same per-level access counts.
    ASSERT_EQ(pr_b.rank.size(), pr_a.rank.size());
    for (std::size_t v = 0; v < pr_a.rank.size(); ++v)
        ASSERT_EQ(pr_b.rank[v], pr_a.rank[v]) << "vertex " << v;
    for (int l = 0; l < kNumMemLevels; ++l) {
        EXPECT_EQ(eng_b.levelCount(static_cast<MemLevel>(l)),
                  eng_a.levelCount(static_cast<MemLevel>(l)))
            << "level " << l;
    }

    mono.free(heap_a, eng_a.thread(0));
    seg.free(heap_b, eng_b.thread(0));
    clearBigraphArtifacts();
}

// --------------------------------------------------- Content equality

TEST(SegmentedCsr, SegmentsHoldExactlyTheMonolithicContent)
{
    BigraphSpec spec;
    spec.scale = 11;
    spec.degree = 8;
    spec.segments = 3;  // Non-power split: 2048 rows -> 683 per segment.
    const CsrGraph host = hostGraphFor(spec);

    Engine eng(testConfig());
    SimHeap heap(eng);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng, heap, eng.thread(0), spec, "bg_content");
    ASSERT_EQ(seg.segmentCount(), 3u);
    ASSERT_EQ(seg.numEdges(), host.numEdges());

    const auto &offs = host.offsets();
    const auto &adj = host.adjacency();
    for (const CsrSegment &s : seg.segments()) {
        // Index: global offsets, terminator included (the boundary
        // offset is duplicated into the next segment's first entry).
        for (NodeId r = s.firstRow; r <= s.rowEnd; ++r) {
            ASSERT_EQ(s.index.raw(static_cast<std::uint64_t>(
                          r - s.firstRow)),
                      offs[static_cast<std::size_t>(r)])
                << "row " << r;
        }
        for (std::int64_t e = s.edgeBase; e < s.edgeEnd; ++e) {
            ASSERT_EQ(
                s.adj.raw(static_cast<std::uint64_t>(e - s.edgeBase)),
                adj[static_cast<std::size_t>(e)])
                << "edge " << e;
        }
    }

    seg.free(heap, eng.thread(0));
    clearBigraphArtifacts();
}

// ------------------------------------------------- Build determinism

TEST(SegmentedCsr, OocBuildDeterministicAndOrderIndependent)
{
    BigraphSpec spec;
    spec.scale = 11;
    spec.degree = 8;
    spec.segments = 4;

    Engine eng_a(testConfig());
    SimHeap heap_a(eng_a);
    SegmentedCsrGraph a = SegmentedCsrGraph::generate(
        eng_a, heap_a, eng_a.thread(0), spec, "bg_det");
    const std::uint32_t count_a = a.segmentCount();
    const std::int64_t edges_a = a.numEdges();
    std::vector<std::uint64_t> sums_a;
    for (std::uint32_t k = 0; k < count_a; ++k)
        sums_a.push_back(a.segmentChecksum(k));
    a.free(heap_a, eng_a.thread(0));

    // Regenerate from scratch (artifact cache dropped) with the
    // segment build order reversed: per-segment content -- and so the
    // checksums -- must not change.
    clearBigraphArtifacts();
    spec.reverseBuild = true;
    Engine eng_b(testConfig());
    SimHeap heap_b(eng_b);
    SegmentedCsrGraph b = SegmentedCsrGraph::generate(
        eng_b, heap_b, eng_b.thread(0), spec, "bg_det");
    ASSERT_EQ(b.segmentCount(), count_a);
    for (std::uint32_t k = 0; k < b.segmentCount(); ++k)
        EXPECT_EQ(b.segmentChecksum(k), sums_a[k]) << "segment " << k;
    EXPECT_EQ(b.numEdges(), edges_a);
    b.free(heap_b, eng_b.thread(0));
    clearBigraphArtifacts();
}

// ---------------------------------------------- Traversal correctness

TEST(SegmentedCsr, CrossSegmentBfsMatchesHost)
{
    BigraphSpec spec;
    spec.scale = 11;
    spec.degree = 8;
    spec.segments = 3;
    const CsrGraph host = hostGraphFor(spec);

    Engine eng(testConfig());
    SimHeap heap(eng);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng, heap, eng.thread(0), spec, "bg_bfs");

    const NodeId source = 1;
    const BfsOutput out = runBfs(eng, heap, seg, source);
    const std::vector<std::int64_t> depth = hostBfsDepths(host, source);
    std::int64_t reached = 0;
    for (NodeId v = 0; v < host.numNodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (depth[vi] == -1) {
            EXPECT_EQ(out.parent[vi], -1) << "vertex " << v;
        } else {
            ++reached;
            ASSERT_NE(out.parent[vi], -1) << "vertex " << v;
            if (v != source) {
                // Parent must be exactly one level above.
                const auto pi =
                    static_cast<std::size_t>(out.parent[vi]);
                EXPECT_EQ(depth[pi] + 1, depth[vi]) << "vertex " << v;
            }
        }
    }
    EXPECT_EQ(out.reached, reached);

    seg.free(heap, eng.thread(0));
    clearBigraphArtifacts();
}

TEST(SegmentedCsr, CrossSegmentPageRankMatchesHost)
{
    BigraphSpec spec;
    spec.scale = 11;
    spec.degree = 8;
    spec.segments = 5;
    const CsrGraph host = hostGraphFor(spec);

    Engine eng(testConfig());
    SimHeap heap(eng);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng, heap, eng.thread(0), spec, "bg_pr");

    const PageRankOutput out = runPageRank(eng, heap, seg, 5);
    const std::vector<double> want = hostPageRank(host, 5);
    for (std::size_t v = 0; v < want.size(); ++v)
        EXPECT_NEAR(out.rank[v], want[v], 1e-12) << "vertex " << v;

    seg.free(heap, eng.thread(0));
    clearBigraphArtifacts();
}

TEST(SegmentedCsr, CrossSegmentWeightedSsspMatchesHost)
{
    BigraphSpec spec;
    spec.scale = 10;
    spec.degree = 8;
    spec.segments = 4;
    spec.weighted = true;
    const CsrGraph host = hostGraphFor(spec);

    Engine eng(testConfig());
    SimHeap heap(eng);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng, heap, eng.thread(0), spec, "bg_sssp");
    ASSERT_TRUE(seg.hasWeights());

    const NodeId source = 3;
    const SsspOutput out = runSssp(eng, heap, seg, source);
    const std::vector<std::int64_t> want =
        hostSsspDistances(host, source);
    ASSERT_EQ(out.dist.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
        ASSERT_EQ(out.dist[v], want[v]) << "vertex " << v;

    seg.free(heap, eng.thread(0));
    clearBigraphArtifacts();
}

// ------------------------------------------------------------- Chaos

TEST(SegmentedCsr, ChaosRunWithFaultsAndInvariantsStaysCorrect)
{
    // Segmented PageRank under pressured DRAM: the clean run pins the
    // expected checksum, then migration faults + the invariant checker
    // are armed -- recoverable faults must not change the output.
    RunConfig rc;
    rc.workload.app = App::BFS;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 13;
    rc.workload.trials = 4;
    rc.workload.segments = 4;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    rc.sys.autonuma.rateLimitBytesPerSec = 4 * kMiB;

    const RunResult clean = runWorkload(rc);
    EXPECT_EQ(clean.faultsInjected, 0u);

    rc.sys.faults =
        FaultPlan::parseOrDie("migrate:p=0.2,burst=8;seed=7");
    rc.sys.checkInvariants = true;
    const RunResult chaos = runWorkload(rc);

    EXPECT_EQ(chaos.outputChecksum, clean.outputChecksum);
    EXPECT_GT(chaos.faultsInjected, 0u);
    EXPECT_GT(chaos.invariantChecksRun, 0u);
    clearBigraphArtifacts();
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Property/invariant torture tests: drive the kernel and engine with
 * randomized operation sequences and check global invariants after
 * every step -- frame conservation, page-table/placement consistency,
 * counter monotonicity, and engine/level accounting. The chaos variant
 * repeats the torture under a fault-injection plan with the runtime
 * invariant checker armed.
 */

#include <cstdlib>
#include <map>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "fault/fault_plan.h"
#include "runtime/sim_heap.h"
#include "sim/engine.h"

namespace memtier {
namespace {

SystemConfig
tortureConfig(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(128 * kPageSize);
    cfg.nvm = makeNvmParams(512 * kPageSize);
    cfg.numThreads = 3;
    cfg.kswapdPeriod = secondsToCycles(0.0002);
    cfg.autonuma.scanPeriod = secondsToCycles(0.0005);
    cfg.autonuma.scanPagesPerRound = 64;
    cfg.seed = seed;
    return cfg;
}

/** Check cross-component conservation invariants. */
void
checkInvariants(Engine &eng)
{
    // 1. Frame conservation per tier: used + free == total.
    const NumaStatSnapshot snap = eng.kernel().numastat();
    for (int node = 0; node < kNumNodes; ++node) {
        const MemoryTier &tier = eng.physicalMemory().tier(
            static_cast<MemNode>(node));
        ASSERT_EQ(snap.appPages[node] + snap.cachePages[node] +
                      snap.freePages[node],
                  tier.totalPages());
        ASSERT_EQ(tier.usedPages() + tier.freePages(),
                  tier.totalPages());
    }

    // 2. Every mapped region's present pages live on a real tier and
    //    respect pinned policies.
    for (const auto &[start, vma] : eng.kernel().addressSpace().vmas()) {
        for (PageNum vpn = pageOf(vma.start); vpn < pageOf(vma.end);
             ++vpn) {
            const PageMeta *meta = eng.kernel().pageMeta(vpn);
            if (meta == nullptr || !meta->present)
                continue;
            if (vma.policy.mode == MemPolicy::Mode::Bind) {
                ASSERT_EQ(meta->node, vma.policy.node);
            }
            if (vma.policy.mode == MemPolicy::Mode::Split) {
                ASSERT_EQ(meta->node,
                          vma.policy.nodeForPage(vpn -
                                                 pageOf(vma.start)));
            }
        }
    }

    // 3. Migration counters are consistent: successes add up.
    const VmStat &vm = eng.kernel().vmstat();
    ASSERT_EQ(vm.pgmigrateSuccess, vm.pgpromoteSuccess +
                                       vm.pgdemoteKswapd +
                                       vm.pgdemoteDirect);
    ASSERT_LE(vm.pgpromoteDemoted, vm.pgpromoteSuccess);
}

/**
 * The randomized torture loop shared by the fault-free and chaos
 * variants: mmap/mbind/munmap/migrate/access at random, checking the
 * conservation invariants as it goes.
 *
 * @param allow_mbind pinned (Bind/Split) placements are only asserted
 *     conformant in fault-free runs: an injected allocation failure on
 *     a pinned fault legitimately falls back to the other tier, so the
 *     chaos variant sticks to the default policy.
 */
void
tortureLoop(Engine &eng, std::uint64_t seed, bool allow_mbind)
{
    SimHeap heap(eng);
    Rng rng(seed);

    struct Live
    {
        SimVector<std::int64_t> vec;
    };
    std::vector<Live> live;
    std::uint64_t prev_faults = 0;

    for (int step = 0; step < 600; ++step) {
        ThreadContext &t =
            eng.thread(static_cast<std::uint32_t>(rng.nextBounded(3)));
        const std::uint64_t action = rng.nextBounded(100);

        if (action < 12 && live.size() < 24) {
            // mmap a 1..32 page object, sometimes bound.
            const std::uint64_t pages = 1 + rng.nextBounded(32);
            auto v = heap.alloc<std::int64_t>(
                t, "torture" + std::to_string(rng.nextBounded(6)),
                pages * 512);
            if (allow_mbind && rng.nextBool(0.25)) {
                eng.kernel().mbind(
                    v.base(),
                    rng.nextBool(0.5)
                        ? MemPolicy::bind(rng.nextBool(0.5)
                                              ? MemNode::DRAM
                                              : MemNode::NVM)
                        : MemPolicy::split(rng.nextBounded(pages)));
            }
            live.push_back({v});
        } else if (action < 18 && !live.empty()) {
            // munmap a random object.
            const std::size_t idx = rng.nextBounded(live.size());
            heap.free(t, live[idx].vec);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        } else if (action < 22 && !live.empty()) {
            // Whole-object migration (move_pages).
            const std::size_t idx = rng.nextBounded(live.size());
            const auto &v = live[idx].vec;
            eng.kernel().migratePages(
                v.base(), v.base() + v.size() * 8,
                rng.nextBool(0.5) ? MemNode::DRAM : MemNode::NVM,
                static_cast<std::uint32_t>(1 + rng.nextBounded(16)),
                t.clock());
        } else if (!live.empty()) {
            // A burst of random loads/stores.
            const std::size_t idx = rng.nextBounded(live.size());
            const auto &v = live[idx].vec;
            for (int burst = 0; burst < 24; ++burst) {
                const std::uint64_t i = rng.nextBounded(v.size());
                if (rng.nextBool(0.4))
                    v.set(t, i, static_cast<std::int64_t>(step));
                else
                    v.get(t, i);
            }
        }

        if (step % 37 == 0) {
            checkInvariants(eng);
            // 4. Fault counter is monotone.
            const std::uint64_t faults =
                eng.kernel().vmstat().pgfault;
            ASSERT_GE(faults, prev_faults);
            prev_faults = faults;
            // 5. Level counts add up to total operations issued.
            std::uint64_t level_sum = 0;
            for (int l = 0; l < kNumMemLevels; ++l) {
                level_sum +=
                    eng.levelCount(static_cast<MemLevel>(l));
            }
            std::uint64_t thread_ops = 0;
            for (std::uint32_t i = 0; i < eng.threadCount(); ++i) {
                thread_ops += eng.thread(i).loads;
                thread_ops += eng.thread(i).stores;
            }
            ASSERT_EQ(level_sum, thread_ops);
        }
    }
    // Final sweep.
    checkInvariants(eng);

    // Cleanup: everything freed leaves both tiers' app usage at zero.
    for (auto &l : live)
        heap.free(eng.thread(0), l.vec);
    const NumaStatSnapshot end = eng.kernel().numastat();
    EXPECT_EQ(end.appPages[0], 0u);
    EXPECT_EQ(end.appPages[1], 0u);
}

class KernelTorture : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KernelTorture, RandomOpsPreserveInvariants)
{
    Engine eng(tortureConfig(GetParam()));
    tortureLoop(eng, GetParam(), /*allow_mbind=*/true);
}

TEST_P(KernelTorture, ChaosRunSurvivesFaultsUnderInvariantChecker)
{
    // Same torture, but with transient faults injected and the kernel's
    // own invariant checker sweeping every 64 events. The chaos CI
    // stage overrides the plan via MEMTIER_FAULT_PLAN.
    SystemConfig cfg = tortureConfig(GetParam());
    cfg.checkInvariants = true;
    cfg.invariantCheckPeriod = 64;
    const FaultPlan fallback = FaultPlan::parseOrDie(
        "migrate:p=0.05,burst=4;alloc:p=0.02;seed=" +
        std::to_string(GetParam() + 1));
    cfg.faults = FaultPlan::fromEnvOr("MEMTIER_FAULT_PLAN", fallback);

    Engine eng(cfg);
    tortureLoop(eng, GetParam(), /*allow_mbind=*/false);

    ASSERT_NE(eng.invariantChecker(), nullptr);
    eng.invariantChecker()->checkNow(eng.globalTime());
    EXPECT_GT(eng.invariantChecker()->checksRun(), 0u);
    if (cfg.faults.anyEnabled()) {
        ASSERT_NE(eng.faultInjector(), nullptr);
        if (std::getenv("MEMTIER_FAULT_PLAN") == nullptr) {
            EXPECT_GT(eng.faultInjector()->totalInjected(), 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelTorture,
                         ::testing::Values(1, 7, 42, 1337, 90210));

}  // namespace
}  // namespace memtier

/**
 * @file
 * Unit tests for the AutoNUMA tiering policy: scanning, hint-fault
 * classification, threshold adaptation, rate limiting, promotion paths.
 */

#include <gtest/gtest.h>

#include "autonuma/autonuma.h"
#include "os/kernel.h"
#include "os/physical_memory.h"

namespace memtier {
namespace {

class NullShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum) override { ++count; }
    std::uint64_t count = 0;
};

class AutoNumaTest : public ::testing::Test
{
  protected:
    AutoNumaTest()
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, KernelParams{})
    {
        kern.setShootdownClient(&sd);
        params.scanPeriod = secondsToCycles(0.001);
        params.scanPagesPerRound = 64;
        params.initialThreshold = secondsToCycles(0.01);
        params.adjustPeriod = secondsToCycles(0.01);
        params.rateLimitBytesPerSec = 100 * kMiB;  // Effectively off.
        numa = std::make_unique<AutoNuma>(kern, params);
    }

    /** Map and first-touch @p pages pages; returns the base address. */
    Addr
    populate(std::uint64_t pages, const char *site = "obj")
    {
        const Addr a = kern.mmap(0, pages * kPageSize, nextObj++, site);
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(a) + i, 100 + i, MemOp::Store);
        return a;
    }

    /** Run enough scan rounds (at increasing times near @p base) to
     *  cover every resident page once. */
    void
    scanAll(Cycles base)
    {
        for (int round = 0; round < 8; ++round)
            numa->scanTick(base + round * 1000);
    }

    static constexpr std::uint64_t kDramPages = 128;
    static constexpr std::uint64_t kNvmPages = 512;

    PhysicalMemory phys;
    NullShootdown sd;
    Kernel kern;
    AutoNumaParams params;
    std::unique_ptr<AutoNuma> numa;
    ObjectId nextObj = 0;
};

TEST_F(AutoNumaTest, ScannerMarksPresentPages)
{
    populate(32);
    numa->scanTick(secondsToCycles(0.5));
    EXPECT_EQ(numa->stats().pagesScanned, 32u);
    // Scanned pages got PROT_NONE and a shootdown.
    EXPECT_GE(sd.count, 32u);
}

TEST_F(AutoNumaTest, ScannerRespectsRoundBudget)
{
    populate(200);
    numa->scanTick(secondsToCycles(0.5));
    EXPECT_EQ(numa->stats().pagesScanned, 64u);  // scanPagesPerRound.
    numa->scanTick(secondsToCycles(0.51));
    EXPECT_EQ(numa->stats().pagesScanned, 128u);
}

TEST_F(AutoNumaTest, ScannerSkipsPinnedRegions)
{
    const Addr a = kern.mmap(0, 8 * kPageSize, nextObj++, "pinned");
    kern.mbind(a, MemPolicy::bind(MemNode::NVM));
    for (std::uint64_t i = 0; i < 8; ++i)
        kern.touchPage(pageOf(a) + i, 100 + i, MemOp::Store);
    numa->scanTick(secondsToCycles(0.5));
    EXPECT_EQ(numa->stats().pagesScanned, 0u);
}

TEST_F(AutoNumaTest, ScannerSkipsPageCache)
{
    const Addr f = kern.registerFile(8 * kPageSize, "file");
    for (std::uint64_t i = 0; i < 8; ++i)
        kern.ensureCached(pageOf(f) + i, 100);
    numa->scanTick(secondsToCycles(0.5));
    EXPECT_EQ(numa->stats().pagesScanned, 0u);
}

TEST_F(AutoNumaTest, HintFaultFeedsLatencyStats)
{
    const Addr a = populate(4);
    numa->scanTick(secondsToCycles(0.5));
    kern.touchPage(pageOf(a), secondsToCycles(0.6), MemOp::Load);
    EXPECT_EQ(numa->stats().hintFaults, 1u);
    EXPECT_EQ(numa->stats().hintLatencySeconds.count(), 1u);
    EXPECT_NEAR(numa->stats().hintLatencySeconds.max(), 0.1, 1e-6);
}

TEST_F(AutoNumaTest, NvmHintFaultPromotesWhenDramFree)
{
    // Get pages onto NVM by exhausting DRAM first.
    populate(kDramPages);          // Fills DRAM.
    const Addr b = populate(16);   // Overflows to NVM.
    ASSERT_EQ(kern.nodeOf(pageOf(b) + 15), MemNode::NVM);

    // Free the DRAM hog so the free-capacity fast path applies.
    // (munmap the first object.)
    const auto &vmas = kern.addressSpace().vmas();
    kern.munmap(secondsToCycles(0.4), vmas.begin()->first);
    ASSERT_TRUE(kern.dramHasFreeCapacity());

    numa->scanTick(secondsToCycles(0.5));
    const PageNum vpn = pageOf(b) + 15;
    ASSERT_TRUE(kern.pageMeta(vpn)->protNone);
    kern.touchPage(vpn, secondsToCycles(0.5001), MemOp::Load);
    EXPECT_EQ(kern.nodeOf(vpn), MemNode::DRAM);
    EXPECT_EQ(numa->stats().promotedFreePath, 1u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 1u);
}

TEST_F(AutoNumaTest, ColdPageRejectedByThresholdWhenDramFull)
{
    populate(kDramPages);        // DRAM full (no free capacity).
    const Addr b = populate(8);  // NVM resident.
    ASSERT_EQ(kern.nodeOf(pageOf(b)), MemNode::NVM);
    scanAll(secondsToCycles(0.5));
    ASSERT_TRUE(kern.pageMeta(pageOf(b))->protNone);
    // Touch far beyond the 10 ms threshold -> classified cold.
    kern.touchPage(pageOf(b), secondsToCycles(2.0), MemOp::Load);
    EXPECT_EQ(numa->stats().rejectedByThreshold, 1u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 0u);
}

TEST_F(AutoNumaTest, HotPagePromotedThroughThresholdPath)
{
    populate(kDramPages - 8);    // DRAM nearly full...
    const Addr pad = populate(16);  // ...now full; rest NVM.
    (void)pad;
    const Addr b = populate(8);  // NVM resident.
    ASSERT_FALSE(kern.dramHasFreeCapacity());
    ASSERT_EQ(kern.nodeOf(pageOf(b)), MemNode::NVM);

    scanAll(secondsToCycles(0.5));
    ASSERT_TRUE(kern.pageMeta(pageOf(b))->protNone);
    // Touch almost immediately: hint fault latency ~0 -> hot.
    kern.touchPage(pageOf(b), secondsToCycles(0.51), MemOp::Load);
    EXPECT_EQ(numa->stats().promotedThresholdPath, 1u);
    EXPECT_EQ(kern.vmstat().promoteCandidates, 1u);
    EXPECT_EQ(kern.nodeOf(pageOf(b)), MemNode::DRAM);
}

TEST_F(AutoNumaTest, RateLimitBlocksPromotionBurst)
{
    params.rateLimitBytesPerSec = kPageSize;  // One page per second.
    numa = std::make_unique<AutoNuma>(kern, params);

    populate(kDramPages);
    const Addr b = populate(8);
    scanAll(secondsToCycles(0.5));
    // Two immediate hot touches: first promoted, second rate limited.
    kern.touchPage(pageOf(b), secondsToCycles(0.51), MemOp::Load);
    kern.touchPage(pageOf(b) + 1, secondsToCycles(0.51) + 100,
                   MemOp::Load);
    const AutoNumaStats &st = numa->stats();
    EXPECT_EQ(st.promotedThresholdPath + st.promotedFreePath, 1u);
    EXPECT_EQ(st.rejectedByRateLimit, 1u);
    EXPECT_EQ(kern.vmstat().promoteRateLimited, 1u);
}

TEST_F(AutoNumaTest, ThresholdDecreasesUnderCandidatePressure)
{
    params.rateLimitBytesPerSec = kPageSize;  // Tiny budget.
    numa = std::make_unique<AutoNuma>(kern, params);
    const Cycles th0 = numa->threshold();

    populate(kDramPages);
    const Addr b = populate(16);
    // Generate candidate pressure across adjustment windows.
    Cycles now = secondsToCycles(0.5);
    for (int round = 0; round < 6; ++round) {
        numa->scanTick(now);
        for (std::uint64_t i = 0; i < 16; ++i)
            kern.touchPage(pageOf(b) + i, now + 1000 + i, MemOp::Load);
        now += params.adjustPeriod + 1;
    }
    EXPECT_LT(numa->threshold(), th0);
}

TEST_F(AutoNumaTest, ThresholdRecoversWhenQuiet)
{
    const Cycles th0 = numa->threshold();
    Cycles now = secondsToCycles(0.5);
    populate(4);
    for (int round = 0; round < 8; ++round) {
        numa->scanTick(now);
        now += params.adjustPeriod + 1;
    }
    EXPECT_GE(numa->threshold(), th0);  // Drifts up, clamped at max.
    EXPECT_LE(numa->threshold(), params.thresholdMax);
}

TEST_F(AutoNumaTest, DramHintFaultNeverPromotes)
{
    const Addr a = populate(4);  // DRAM resident.
    numa->scanTick(secondsToCycles(0.5));
    kern.touchPage(pageOf(a), secondsToCycles(0.50001), MemOp::Load);
    EXPECT_EQ(numa->stats().hintFaults, 1u);
    EXPECT_EQ(numa->stats().hintFaultsNvm, 0u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 0u);
}

TEST_F(AutoNumaTest, RateLimitSurvivesNonMonotonicClocks)
{
    // Regression: hint faults arrive stamped with per-thread clocks,
    // which are not globally monotone. A backwards timestamp must not
    // refill the token bucket (unsigned underflow would set elapsed to
    // ~2^64 cycles and disable the limiter entirely).
    params.rateLimitBytesPerSec = kPageSize;  // One page per second.
    numa = std::make_unique<AutoNuma>(kern, params);

    populate(kDramPages);
    const Addr b = populate(8);
    scanAll(secondsToCycles(0.5));

    // First hot touch at t=0.51 s consumes the bucket.
    kern.touchPage(pageOf(b), secondsToCycles(0.51), MemOp::Load);
    // Second touch from a "different thread" whose clock is behind:
    // must be rate limited, not treated as a huge refill.
    kern.touchPage(pageOf(b) + 1, secondsToCycles(0.4), MemOp::Load);
    const AutoNumaStats &st = numa->stats();
    EXPECT_EQ(st.promotedThresholdPath + st.promotedFreePath, 1u);
    EXPECT_EQ(st.rejectedByRateLimit, 1u);
}

TEST_F(AutoNumaTest, RescanAfterWrapMarksAgain)
{
    const Addr a = populate(8);
    numa->scanTick(secondsToCycles(0.5));
    // Clear marks via touches.
    for (std::uint64_t i = 0; i < 8; ++i)
        kern.touchPage(pageOf(a) + i, secondsToCycles(0.6), MemOp::Load);
    numa->scanTick(secondsToCycles(0.7));
    EXPECT_EQ(numa->stats().pagesScanned, 16u);
}

}  // namespace
}  // namespace memtier

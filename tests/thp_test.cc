/**
 * @file
 * Tests for the transparent-huge-page subsystem: contiguous 2 MiB frame
 * allocation, PMD fault allocation, khugepaged collapse, demand and
 * reclaim splitting, PMD-granularity promotion, the 2 MiB TLB entry
 * classes, and the end-to-end determinism / invariant guarantees.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cache/tlb.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "os/invariants.h"
#include "os/kernel.h"
#include "os/physical_memory.h"
#include "thp/khugepaged.h"
#include "thp/thp_params.h"

namespace memtier {
namespace {

/** Records both 4 KiB and 2 MiB shootdowns. */
class RecordingShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum vpn) override
    {
        ++count;
        last = vpn;
    }

    void tlbShootdownHuge(PageNum base_vpn) override
    {
        ++hugeCount;
        lastHuge = base_vpn;
    }

    std::uint64_t count = 0;
    std::uint64_t hugeCount = 0;
    PageNum last = 0;
    PageNum lastHuge = 0;
};

/**
 * A THP-enabled machine whose DRAM holds exactly two 2 MiB blocks, so
 * contiguity effects (fragmentation, demand splits) are easy to force.
 */
class ThpKernelTest : public ::testing::Test
{
  protected:
    static KernelParams
    thpParams(bool fault_alloc)
    {
        KernelParams kp;
        kp.thp.enabled = true;
        kp.thp.faultAlloc = fault_alloc;
        return kp;
    }

    explicit ThpKernelTest(bool fault_alloc = true)
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, thpParams(fault_alloc))
    {
        kern.setShootdownClient(&shootdown);
    }

    /** Touch every page of [start, start+pages) once. */
    void
    touchRange(Addr start, std::uint64_t pages, Cycles now = 1000)
    {
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(start) + i, now + i, MemOp::Store);
    }

    /** Full invariant sweep; panics (fails the test) on violation. */
    void
    checkInvariants(Cycles now = 1'000'000)
    {
        InvariantChecker checker(kern, 1);
        checker.checkNow(now);
    }

    static constexpr std::uint64_t kDramPages = 2 * kPagesPerHuge;
    static constexpr std::uint64_t kNvmPages = 8 * kPagesPerHuge;

    PhysicalMemory phys;
    RecordingShootdown shootdown;
    Kernel kern;
};

/** Same machine with fault allocation off: huge pages only collapse. */
class ThpCollapseTest : public ThpKernelTest
{
  protected:
    ThpCollapseTest() : ThpKernelTest(/*fault_alloc=*/false) {}
};

// ------------------------------------------------- PMD fault allocation

TEST_F(ThpKernelTest, FirstTouchAllocatesPmdMapping)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "huge");
    EXPECT_EQ(a % kHugePageSize, 0u);  // THP mode aligns VMA starts.

    const TouchResult tr = kern.touchPage(pageOf(a), 1000, MemOp::Store);
    EXPECT_TRUE(tr.pageFault);
    EXPECT_EQ(tr.node, MemNode::DRAM);
    EXPECT_EQ(kern.vmstat().pgfault, 1u);
    EXPECT_EQ(kern.vmstat().thpFaultAlloc, 1u);
    EXPECT_EQ(kern.hugeMappings(), 1u);
    EXPECT_EQ(phys.dram().usedPages(), kPagesPerHuge);

    // The one fault populated the whole range: no further faults.
    for (std::uint64_t i = 0; i < kPagesPerHuge; ++i) {
        EXPECT_TRUE(kern.isHugeMapped(pageOf(a) + i));
        const TouchResult t =
            kern.touchPage(pageOf(a) + i, 2000 + i, MemOp::Load);
        EXPECT_FALSE(t.pageFault);
    }
    EXPECT_EQ(kern.vmstat().pgfault, 1u);
    checkInvariants();
}

TEST_F(ThpKernelTest, FallsBackToBasePagesWhenNoContiguousFrame)
{
    // Dirty both DRAM blocks: the filler's first touch huge-allocates
    // block 0, its tail pages land as 4 KiB pages in block 1.
    const Addr filler = kern.mmap(0, (kPagesPerHuge + 8) * kPageSize,
                                  0, "filler");
    touchRange(filler, kPagesPerHuge + 8);
    ASSERT_EQ(kern.vmstat().thpFaultAlloc, 1u);
    // Exhaust NVM's blocks too so the fallback has nowhere to go.
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(phys.nvm().allocateHuge(FrameOwner::App).has_value());

    const Addr a = kern.mmap(0, kHugePageSize, 1, "huge");
    const TouchResult tr = kern.touchPage(pageOf(a), 5000, MemOp::Store);
    EXPECT_TRUE(tr.pageFault);
    EXPECT_EQ(kern.vmstat().thpFaultAlloc, 1u);  // Filler's, not ours.
    EXPECT_EQ(kern.vmstat().thpFaultFallback, 1u);
    EXPECT_EQ(kern.hugeMappings(), 1u);
    EXPECT_FALSE(kern.isHugeMapped(pageOf(a)));
}

TEST_F(ThpKernelTest, MunmapFreesWholePmdMapping)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "huge");
    kern.touchPage(pageOf(a), 1000, MemOp::Store);
    ASSERT_EQ(kern.hugeMappings(), 1u);

    kern.munmap(2000, a);
    EXPECT_EQ(kern.hugeMappings(), 0u);
    EXPECT_EQ(kern.vmstat().thpUnmapHuge, 1u);
    EXPECT_EQ(phys.dram().usedPages(), 0u);
    EXPECT_GE(shootdown.hugeCount, 1u);
    checkInvariants();
}

// ------------------------------------------------------------- Collapse

TEST_F(ThpCollapseTest, CollapseBuildsPmdFromBasePages)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "region");
    touchRange(a, kPagesPerHuge);
    EXPECT_EQ(kern.vmstat().pgfault, kPagesPerHuge);
    ASSERT_EQ(kern.hugeMappings(), 0u);

    const PageNum base = pageOf(a);
    EXPECT_EQ(kern.collapseHugePage(base, 5000),
              CollapseResult::Collapsed);
    EXPECT_EQ(kern.vmstat().thpCollapseAlloc, 1u);
    EXPECT_EQ(kern.hugeMappings(), 1u);
    EXPECT_TRUE(kern.isHugeMapped(base + kPagesPerHuge - 1));
    // 512 scattered frames were retired for one contiguous block.
    EXPECT_EQ(phys.dram().usedPages(), kPagesPerHuge);
    checkInvariants();

    // Collapsing an already-huge range is a no-op.
    EXPECT_EQ(kern.collapseHugePage(base, 6000),
              CollapseResult::NotEligible);
    EXPECT_EQ(kern.vmstat().thpCollapseAlloc, 1u);
}

TEST_F(ThpCollapseTest, CollapseRequiresFullyPopulatedUnmarkedRange)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "region");
    touchRange(a, kPagesPerHuge - 1);  // One hole at the end.
    const PageNum base = pageOf(a);
    EXPECT_EQ(kern.collapseHugePage(base, 5000),
              CollapseResult::NotEligible);

    touchRange(a, kPagesPerHuge);  // Fill the hole...
    PageMeta *meta = kern.pageMetaMutable(base + 17);
    ASSERT_NE(meta, nullptr);
    meta->protNone = true;  // ...but leave a pending scan marker.
    meta->scanTime = 5500;
    EXPECT_EQ(kern.collapseHugePage(base, 6000),
              CollapseResult::NotEligible);
    EXPECT_EQ(kern.vmstat().thpCollapseAlloc, 0u);

    // Clear the marker: now it collapses.
    kern.touchPage(base + 17, 6500, MemOp::Load);
    EXPECT_EQ(kern.collapseHugePage(base, 7000),
              CollapseResult::Collapsed);
    checkInvariants();
}

TEST_F(ThpCollapseTest, CollapseFailsWithoutContiguousFrame)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "region");
    touchRange(a, kPagesPerHuge);  // Fills DRAM block 0.
    const Addr b = kern.mmap(0, 8 * kPageSize, 1, "filler");
    touchRange(b, 8, 2000);  // Dirties DRAM block 1.

    EXPECT_EQ(kern.collapseHugePage(pageOf(a), 5000),
              CollapseResult::AllocFailed);
    EXPECT_EQ(kern.vmstat().thpCollapseFail, 1u);
    EXPECT_EQ(kern.hugeMappings(), 0u);
    checkInvariants();
}

TEST_F(ThpCollapseTest, KhugepagedCollapsesEligibleRanges)
{
    ThpParams params;
    params.enabled = true;
    Khugepaged daemon(kern, params);

    const Addr a = kern.mmap(0, kHugePageSize, 0, "region");
    touchRange(a, kPagesPerHuge);

    daemon.tick(10'000);
    EXPECT_EQ(daemon.stats().collapsed, 1u);
    EXPECT_GE(daemon.stats().rangesScanned, 1u);
    EXPECT_EQ(kern.hugeMappings(), 1u);
    EXPECT_EQ(kern.vmstat().thpCollapseAlloc, 1u);
    checkInvariants();

    // The next round rescans and finds nothing new to do.
    daemon.tick(20'000);
    EXPECT_EQ(daemon.stats().collapsed, 1u);
    EXPECT_EQ(kern.hugeMappings(), 1u);
}

// ------------------------------------------------ Split / PMD migration

TEST_F(ThpKernelTest, HugeHintFaultCoversWholeRange)
{
    const Addr a = kern.mmap(0, kHugePageSize, 0, "huge");
    kern.touchPage(pageOf(a), 1000, MemOp::Store);
    const PageNum base = pageOf(a);

    PageMeta *hm = kern.hugeMetaMutable(base + 3);
    ASSERT_NE(hm, nullptr);
    hm->protNone = true;
    hm->scanTime = 2000;
    kern.shootdownHuge(base);

    // One hint fault on any subpage clears the marker for all 512.
    const TouchResult tr = kern.touchPage(base + 200, 3000, MemOp::Load);
    EXPECT_TRUE(tr.hintFault);
    EXPECT_EQ(kern.vmstat().numaHintFaults, 1u);
    EXPECT_FALSE(kern.hugeMetaMutable(base)->protNone);
    const TouchResult again =
        kern.touchPage(base + 400, 4000, MemOp::Load);
    EXPECT_FALSE(again.hintFault);
    EXPECT_EQ(kern.vmstat().numaHintFaults, 1u);
}

TEST_F(ThpKernelTest, PromotionMovesAllSubpagesAtOnce)
{
    // Occupy DRAM so the huge allocation lands on NVM.
    const Addr filler = kern.mmap(0, (kPagesPerHuge + 88) * kPageSize,
                                  0, "filler");
    touchRange(filler, kPagesPerHuge + 88);
    const Addr a = kern.mmap(0, kHugePageSize, 1, "huge");
    kern.touchPage(pageOf(a), 5000, MemOp::Store);
    const PageNum base = pageOf(a);
    ASSERT_TRUE(kern.isHugeMapped(base));
    ASSERT_EQ(kern.nodeOf(base), MemNode::NVM);

    // Free DRAM again and promote through an interior subpage.
    kern.munmap(6000, filler);
    const Cycles cost = kern.promotePage(base + 123, 7000);
    EXPECT_GT(cost, 0u);
    EXPECT_TRUE(kern.isHugeMapped(base));  // Promoted whole, not split.
    EXPECT_EQ(kern.vmstat().thpSplitPage, 0u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, kPagesPerHuge);
    EXPECT_EQ(kern.vmstat().pgmigrateSuccess, kPagesPerHuge);
    for (std::uint64_t i = 0; i < kPagesPerHuge; i += 64)
        EXPECT_EQ(kern.nodeOf(base + i), MemNode::DRAM);
    EXPECT_EQ(phys.nvm().ownerPages(FrameOwner::App), 0u);
    checkInvariants();
}

TEST_F(ThpKernelTest, DemandSplitWhenNoContiguousDramFrame)
{
    // As above, but DRAM stays fragmented: the tiering decision then
    // straddles the huge page, which is demand-split and only the
    // faulting subpage promoted.
    const Addr filler = kern.mmap(0, (kPagesPerHuge + 88) * kPageSize,
                                  0, "filler");
    touchRange(filler, kPagesPerHuge + 88);
    const Addr a = kern.mmap(0, kHugePageSize, 1, "huge");
    kern.touchPage(pageOf(a), 5000, MemOp::Store);
    const PageNum base = pageOf(a);
    ASSERT_EQ(kern.nodeOf(base), MemNode::NVM);

    const Cycles cost = kern.promotePage(base + 123, 7000);
    EXPECT_GT(cost, 0u);
    EXPECT_FALSE(kern.isHugeMapped(base));
    EXPECT_EQ(kern.vmstat().thpSplitPage, 1u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 1u);
    EXPECT_EQ(kern.nodeOf(base + 123), MemNode::DRAM);
    EXPECT_EQ(kern.nodeOf(base), MemNode::NVM);
    checkInvariants();
}

TEST_F(ThpCollapseTest, ReclaimSplitsBeforeDemoting)
{
    // A cold huge page in DRAM plus hot 4 KiB filler pages: kswapd's
    // clock picks the huge page, which must be split before any of it
    // is demoted -- a huge page never spans tiers.
    const Addr a = kern.mmap(0, kHugePageSize, 0, "region");
    touchRange(a, kPagesPerHuge, 1000);
    ASSERT_EQ(kern.collapseHugePage(pageOf(a), 5000),
              CollapseResult::Collapsed);

    const Addr filler = kern.mmap(0, 480 * kPageSize, 1, "filler");
    touchRange(filler, 480, 10'000);
    ASSERT_LT(phys.dram().freePages(),
              static_cast<std::uint64_t>(0.05 * kDramPages));

    kern.kswapdTick(1'000'000);
    EXPECT_EQ(kern.vmstat().thpSplitPage, 1u);
    EXPECT_FALSE(kern.isHugeMapped(pageOf(a)));
    EXPECT_GT(kern.vmstat().pgdemoteKswapd, 0u);
    // Every page of the ex-huge range is individually resident now.
    for (std::uint64_t i = 0; i < kPagesPerHuge; ++i)
        ASSERT_NE(kern.pageMeta(pageOf(a) + i), nullptr);
    checkInvariants();
}

// ------------------------------------------------- 2 MiB TLB entry class

TEST(ThpTlb, HugeEntriesAreSeparateFromBaseEntries)
{
    Tlb tlb;
    // Fill the 4 KiB arrays with unrelated pages.
    for (PageNum v = 0; v < 4096; ++v)
        tlb.lookup(v);
    const std::uint64_t base_misses = tlb.misses();

    // Huge lookups neither hit nor evict the 4 KiB arrays.
    EXPECT_EQ(tlb.lookupHuge(0), TlbOutcome::Miss);
    EXPECT_EQ(tlb.lookupHuge(0), TlbOutcome::L1Hit);
    EXPECT_EQ(tlb.hugeMisses(), 1u);
    EXPECT_EQ(tlb.hugeL1Hits(), 1u);
    EXPECT_EQ(tlb.misses(), base_misses);

    tlb.invalidateHuge(0);
    EXPECT_EQ(tlb.lookupHuge(0), TlbOutcome::Miss);
}

TEST(ThpTlb, HugeReachCoversManyBasePages)
{
    // 64 MiB touched at 2 MiB granularity fits the huge STLB easily;
    // the same footprint at 4 KiB granularity thrashes the base STLB.
    Tlb tlb;
    const unsigned ranges = 32;
    for (unsigned rep = 0; rep < 2; ++rep) {
        for (unsigned r = 0; r < ranges; ++r)
            tlb.lookupHuge(static_cast<PageNum>(r) * kPagesPerHuge);
    }
    EXPECT_EQ(tlb.hugeMisses(), ranges);  // Second pass all hits.

    std::uint64_t touched = 0;
    for (unsigned rep = 0; rep < 2; ++rep) {
        for (PageNum v = 0; v < ranges * kPagesPerHuge; v += 8) {
            tlb.lookup(v);
            ++touched;
        }
    }
    EXPECT_GT(tlb.misses(), touched / 2);  // Base arrays keep missing.
}

TEST(ThpTlb, HugeBasesDoNotAliasOntoOneSet)
{
    // Regression: indexing huge entries by raw base vpn would put every
    // range (512-aligned, low bits zero) into set 0.
    Tlb tlb;
    for (unsigned r = 0; r < 8; ++r)
        tlb.lookupHuge(static_cast<PageNum>(r) * kPagesPerHuge);
    for (unsigned r = 0; r < 8; ++r) {
        EXPECT_EQ(tlb.lookupHuge(static_cast<PageNum>(r) * kPagesPerHuge),
                  TlbOutcome::L1Hit)
            << "range " << r << " evicted: huge entries aliased";
    }
}

// ----------------------------------------------------------- End-to-end

RunConfig
thpConfig(bool thp)
{
    RunConfig rc;
    rc.workload.app = App::BFS;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 15;  // Arrays span multiple 2 MiB ranges.
    rc.workload.trials = 2;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(4 * kMiB);
    rc.sys.nvm = makeNvmParams(16 * kMiB);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    rc.sys.autonuma.rateLimitBytesPerSec = 16 * kMiB;
    rc.sys.thp.enabled = thp;
    return rc;
}

TEST(ThpEndToEnd, ThpRunsReplayBitIdentically)
{
    const RunConfig rc = thpConfig(true);
    const RunResult a = runWorkload(rc);
    const RunResult b = runWorkload(rc);
    EXPECT_EQ(std::memcmp(&a.vmstat, &b.vmstat, sizeof(VmStat)), 0);
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
    // The run actually exercised the THP machinery.
    EXPECT_GT(a.vmstat.thpFaultAlloc + a.vmstat.thpCollapseAlloc, 0u);
}

TEST(ThpEndToEnd, ThpNeverChangesApplicationOutput)
{
    if (thpForcedByEnv())
        GTEST_SKIP() << "MEMTIER_THP=ON removes the THP-off baseline";
    const RunResult off = runWorkload(thpConfig(false));
    const RunResult on = runWorkload(thpConfig(true));
    EXPECT_EQ(off.outputChecksum, on.outputChecksum);
    EXPECT_EQ(off.vmstat.thpFaultAlloc, 0u);
    EXPECT_EQ(off.vmstat.thpCollapseAlloc, 0u);
    EXPECT_GT(on.vmstat.thpFaultAlloc + on.vmstat.thpCollapseAlloc, 0u);
}

TEST(ThpEndToEnd, ChaosMigrationFailuresKeepInvariantsGreen)
{
    // The acceptance scenario: 20% transient migration failures with
    // THP on; splits, huge promotions and failed migrations interleave
    // while the extended invariant checker sweeps continuously.
    RunConfig rc = thpConfig(true);
    rc.sys.faults = FaultPlan::parseOrDie("migrate:p=0.2,burst=8;seed=7");
    rc.sys.checkInvariants = true;
    rc.sys.invariantCheckPeriod = 256;
    const RunResult r = runWorkload(rc);

    const RunResult clean = runWorkload(thpConfig(true));
    EXPECT_EQ(r.outputChecksum, clean.outputChecksum);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.invariantChecksRun, 0u);
}

TEST(ThpEndToEnd, ThpReducesTlbMissRate)
{
    // The paper's TLB-reach argument: PMD mappings shrink the dTLB miss
    // rate on graph-scale footprints (Table 3's miss-cost column).
    if (thpForcedByEnv())
        GTEST_SKIP() << "MEMTIER_THP=ON removes the THP-off baseline";
    RunConfig off_rc = thpConfig(false);
    RunConfig on_rc = thpConfig(true);
    off_rc.sampling = true;
    on_rc.sampling = true;
    const RunResult off = runWorkload(off_rc);
    const RunResult on = runWorkload(on_rc);

    const auto missRate = [](const RunResult &r) {
        std::uint64_t miss = 0;
        for (const MemorySample &s : r.samples)
            miss += s.tlbMiss ? 1 : 0;
        return static_cast<double>(miss) /
               static_cast<double>(r.samples.size());
    };
    ASSERT_FALSE(off.samples.empty());
    ASSERT_FALSE(on.samples.empty());
    EXPECT_LT(missRate(on), missRate(off));
}

}  // namespace
}  // namespace memtier

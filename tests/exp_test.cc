/**
 * @file
 * Unit tests for the experiment harness helpers: report formatting,
 * workload registry and the dataset cache.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "exp/report.h"
#include "exp/runner.h"
#include "exp/workloads.h"

namespace memtier {
namespace {

// --------------------------------------------------------------- report

TEST(Report, TableAlignsColumns)
{
    TextTable table({"a", "long_header"});
    table.addRow({"xx", "1"});
    table.addRow({"y", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_NE(text.find("a   long_header"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, Percent)
{
    EXPECT_EQ(pct(0.4911), "49.1%");
    EXPECT_EQ(pct(0.0), "0.0%");
    EXPECT_EQ(pct(1.0, 0), "100%");
    EXPECT_EQ(pct(-0.06), "-6.0%");
}

TEST(Report, Num)
{
    EXPECT_EQ(num(3.14159, 2), "3.14");
    EXPECT_EQ(num(2.0, 0), "2");
}

TEST(Report, FmtBytes)
{
    EXPECT_EQ(fmtBytes(512), "512.0 B");
    EXPECT_EQ(fmtBytes(8192), "8.0 KiB");
    EXPECT_EQ(fmtBytes(24 * kMiB), "24.0 MiB");
    EXPECT_EQ(fmtBytes(3 * kGiB), "3.0 GiB");
}

TEST(Report, FmtCount)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(Report, Banner)
{
    std::ostringstream out;
    banner(out, "hello");
    EXPECT_EQ(out.str(), "\n=== hello ===\n");
}

// ------------------------------------------------------------ workloads

TEST(Workloads, Names)
{
    EXPECT_STREQ(appName(App::BC), "bc");
    EXPECT_STREQ(appName(App::SSSP), "sssp");
    EXPECT_STREQ(graphKindName(GraphKind::Urand), "urand");
    WorkloadSpec w;
    w.app = App::CC;
    w.kind = GraphKind::Urand;
    EXPECT_EQ(w.name(), "cc_urand");
}

TEST(Workloads, PaperMatrixIsSixCombos)
{
    const auto list = paperWorkloads(12);
    ASSERT_EQ(list.size(), 6u);
    for (const auto &w : list) {
        EXPECT_EQ(w.scale, 12);
        EXPECT_GT(w.trials, 0);
    }
}

TEST(Workloads, DatasetCacheReturnsSameInstance)
{
    const auto a = datasetGraph(GraphKind::Urand, 8, 4, 1);
    const auto b = datasetGraph(GraphKind::Urand, 8, 4, 1);
    EXPECT_EQ(a.get(), b.get());
    const auto c = datasetGraph(GraphKind::Urand, 8, 4, 2);
    EXPECT_NE(a.get(), c.get());
}

TEST(Workloads, WeightedCacheIndependentOfUnweighted)
{
    const auto plain = datasetGraph(GraphKind::Kron, 8, 4, 1);
    const auto weighted = weightedDatasetGraph(GraphKind::Kron, 8, 4, 1);
    EXPECT_FALSE(plain->hasWeights());
    EXPECT_TRUE(weighted->hasWeights());
    EXPECT_EQ(plain->numEdges(), weighted->numEdges());
}

TEST(Workloads, DatasetCacheEvictsLeastRecentlyUsed)
{
    clearDatasetCache();
    const auto a = datasetGraph(GraphKind::Urand, 8, 4, 11);
    const std::uint64_t one = datasetCacheBytes();
    ASSERT_GT(one, 0u);
    // Cap to two graphs' worth: a third build must evict the oldest.
    setDatasetCacheCapBytes(2 * one + one / 2);
    const auto b = datasetGraph(GraphKind::Urand, 8, 4, 12);
    EXPECT_EQ(datasetCacheCount(), 2u);
    const auto c = datasetGraph(GraphKind::Urand, 8, 4, 13);
    EXPECT_EQ(datasetCacheCount(), 2u);
    EXPECT_LE(datasetCacheBytes(), 2 * one + one / 2);
    // "a" was evicted, but the shared_ptr still owns a live graph.
    EXPECT_EQ(a->numNodes(), 1 << 8);
    // Rebuilding "a" gives a fresh instance (cache no longer holds it).
    const auto a2 = datasetGraph(GraphKind::Urand, 8, 4, 11);
    EXPECT_NE(a.get(), a2.get());
    EXPECT_EQ(a->numEdges(), a2->numEdges());
    setDatasetCacheCapBytes(1ULL << 30);
    clearDatasetCache();
}

TEST(Runner, SamplingDoesNotPerturbTiming)
{
    // The PEBS-style sampler observes accesses but must never change
    // the simulation's timing or results (a property perf itself only
    // approximates).
    RunConfig rc;
    rc.workload.app = App::BFS;
    rc.workload.kind = GraphKind::Urand;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.sys.dram = makeDramParams(512 * kPageSize);
    rc.sys.nvm = makeNvmParams(2048 * kPageSize);
    rc.sampling = true;
    const RunResult with = runWorkload(rc);
    rc.sampling = false;
    const RunResult without = runWorkload(rc);
    EXPECT_EQ(with.totalSeconds, without.totalSeconds);
    EXPECT_EQ(with.outputChecksum, without.outputChecksum);
    EXPECT_GT(with.samples.size(), 0u);
    EXPECT_EQ(without.samples.size(), 0u);
}

TEST(Workloads, ModeNamesDistinct)
{
    std::set<std::string> names;
    for (const Mode m :
         {Mode::AutoNuma, Mode::NoTiering, Mode::ObjectStatic,
          Mode::ObjectSpill, Mode::ObjectDynamic, Mode::AllDram,
          Mode::AllNvm}) {
        names.insert(modeName(m));
    }
    EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Unit tests for the simulation engine: access path levels and costs,
 * fault integration, thread interleaving, barriers, services, TLB
 * shootdown and the timeline.
 */

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace memtier {
namespace {

/** Small deterministic machine for engine tests. */
SystemConfig
tinyConfig(std::uint32_t threads = 4)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(512 * kPageSize);
    cfg.nvm = makeNvmParams(2048 * kPageSize);
    cfg.numThreads = threads;
    return cfg;
}

/** Records every access the engine reports. */
class RecordingObserver : public AccessObserver
{
  public:
    void onAccess(const AccessRecord &r) override { records.push_back(r); }
    std::vector<AccessRecord> records;
};

TEST(Engine, FirstAccessFaultsToDram)
{
    Engine eng(tinyConfig());
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 64 * kPageSize, 0, "obj");
    eng.load(t, a);
    EXPECT_EQ(eng.kernel().vmstat().pgfault, 1u);
    EXPECT_EQ(eng.kernel().nodeOf(pageOf(a)), MemNode::DRAM);
    EXPECT_EQ(eng.levelCount(MemLevel::DRAM), 1u);
}

TEST(Engine, RepeatAccessHitsL1)
{
    Engine eng(tinyConfig());
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, kPageSize, 0, "obj");
    eng.load(t, a);
    const Cycles before = t.clock();
    eng.load(t, a);
    const Cycles hit_cost = t.clock() - before;
    // L1 hit (or LFB residency window): small cost.
    EXPECT_LE(hit_cost, eng.config().issueCycles +
                            eng.config().cache.l3Latency);
    EXPECT_GE(eng.levelCount(MemLevel::L1) +
                  eng.levelCount(MemLevel::LFB),
              1u);
}

TEST(Engine, NvmAccessSlowerThanDram)
{
    SystemConfig cfg = tinyConfig();
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);

    const Addr dram_obj = eng.sysMmap(t, kPageSize, 0, "d");
    eng.kernel().mbind(dram_obj, MemPolicy::bind(MemNode::DRAM));
    const Addr nvm_obj = eng.sysMmap(t, kPageSize, 1, "n");
    eng.kernel().mbind(nvm_obj, MemPolicy::bind(MemNode::NVM));

    // Fault both in, then measure a cold (post-flush) load from each.
    eng.load(t, dram_obj);
    eng.load(t, nvm_obj);
    t.l1.clear();
    t.l2.clear();
    t.lfb = LineFillBuffer();

    Cycles c0 = t.clock();
    eng.load(t, dram_obj + 8 * kLineSize);
    const Cycles dram_cost = t.clock() - c0;
    t.l1.clear();
    t.l2.clear();
    c0 = t.clock();
    eng.load(t, nvm_obj + 8 * kLineSize);
    const Cycles nvm_cost = t.clock() - c0;

    EXPECT_GT(nvm_cost, dram_cost);
    EXPECT_EQ(eng.levelCount(MemLevel::NVM), 2u);
}

TEST(Engine, TlbMissReportedOnFirstTouch)
{
    Engine eng(tinyConfig());
    RecordingObserver obs;
    eng.setObserver(&obs);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, kPageSize, 0, "obj");
    eng.load(t, a);
    eng.load(t, a);
    ASSERT_EQ(obs.records.size(), 2u);
    EXPECT_TRUE(obs.records[0].tlbMiss);
    EXPECT_FALSE(obs.records[1].tlbMiss);
}

TEST(Engine, ShootdownInvalidatesAllThreads)
{
    Engine eng(tinyConfig(3));
    ThreadContext &t0 = eng.thread(0);
    const Addr a = eng.sysMmap(t0, kPageSize, 0, "obj");
    for (std::uint32_t i = 0; i < 3; ++i)
        eng.load(eng.thread(i), a);
    eng.tlbShootdown(pageOf(a));
    RecordingObserver obs;
    eng.setObserver(&obs);
    for (std::uint32_t i = 0; i < 3; ++i)
        eng.load(eng.thread(i), a);
    for (const auto &r : obs.records)
        EXPECT_TRUE(r.tlbMiss);
}

TEST(Engine, ParallelForCoversRangeExactlyOnce)
{
    Engine eng(tinyConfig(5));
    std::vector<int> hits(1000, 0);
    eng.parallelFor(1000, [&](ThreadContext &, std::uint64_t i) {
        ++hits[i];
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Engine, ParallelForPartitionsAcrossThreads)
{
    Engine eng(tinyConfig(4));
    std::vector<std::uint64_t> per_thread(4, 0);
    eng.parallelFor(100, [&](ThreadContext &t, std::uint64_t) {
        ++per_thread[t.id()];
    });
    for (const auto count : per_thread)
        EXPECT_EQ(count, 25u);
}

TEST(Engine, ParallelForBarrierAlignsClocks)
{
    Engine eng(tinyConfig(4));
    ThreadContext &t0 = eng.thread(0);
    const Addr a = eng.sysMmap(t0, 64 * kPageSize, 0, "obj");
    eng.parallelFor(64, [&](ThreadContext &t, std::uint64_t i) {
        eng.store(t, a + i * kLineSize * 7 % (64 * kPageSize));
    });
    const Cycles c = eng.thread(0).clock();
    for (std::uint32_t i = 1; i < 4; ++i)
        EXPECT_EQ(eng.thread(i).clock(), c);
}

TEST(Engine, ParallelForDeterministic)
{
    auto run = [] {
        Engine eng(tinyConfig(4));
        ThreadContext &t0 = eng.thread(0);
        const Addr a = eng.sysMmap(t0, 256 * kPageSize, 0, "obj");
        eng.parallelFor(4096, [&](ThreadContext &t, std::uint64_t i) {
            eng.store(t, a + (i * 97) % (256 * kPageSize));
        });
        return eng.globalTime();
    };
    EXPECT_EQ(run(), run());
}

TEST(Engine, ParallelForEmptyRange)
{
    Engine eng(tinyConfig());
    const Cycles before = eng.globalTime();
    eng.parallelFor(0, [&](ThreadContext &, std::uint64_t) {
        FAIL() << "body must not run";
    });
    EXPECT_EQ(eng.globalTime(), before);
}

TEST(Engine, ParallelForFewerItemsThanThreads)
{
    Engine eng(tinyConfig(8));
    int runs = 0;
    eng.parallelFor(3, [&](ThreadContext &, std::uint64_t) { ++runs; });
    EXPECT_EQ(runs, 3);
}

TEST(Engine, StoresAllocateAndDirtyWritebacksFlow)
{
    SystemConfig cfg = tinyConfig(1);
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 256 * kPageSize, 0, "obj");
    // Write a working set far larger than L1+L2+L3 to force dirty
    // evictions all the way to memory.
    for (Addr off = 0; off < 256 * kPageSize; off += kLineSize)
        eng.store(t, a + off);
    for (Addr off = 0; off < 256 * kPageSize; off += kLineSize)
        eng.store(t, a + off);
    EXPECT_GT(eng.thread(0).l1.writebacks() +
                  eng.thread(0).l2.writebacks() +
                  eng.sharedL3().writebacks(),
              0u);
}

TEST(Engine, TimelineSamplesAdvance)
{
    SystemConfig cfg = tinyConfig(2);
    cfg.timelinePeriod = secondsToCycles(0.0001);
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 128 * kPageSize, 0, "obj");
    for (Addr off = 0; off < 128 * kPageSize; off += kLineSize)
        eng.store(t, a + off);
    ASSERT_GT(eng.timeline().size(), 2u);
    double prev = -1.0;
    for (const auto &p : eng.timeline()) {
        EXPECT_GT(p.sec, prev);
        prev = p.sec;
    }
}

TEST(Engine, KswapdServiceRunsUnderPressure)
{
    SystemConfig cfg = tinyConfig(1);
    cfg.dram = makeDramParams(128 * kPageSize);
    cfg.kswapdPeriod = secondsToCycles(0.0001);
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 256 * kPageSize, 0, "obj");
    for (Addr off = 0; off < 256 * kPageSize; off += kPageSize)
        eng.store(t, a + off);
    // Drive time forward so kswapd ticks fire.
    for (Addr off = 0; off < 256 * kPageSize; off += kLineSize)
        eng.load(t, a + off);
    EXPECT_GT(eng.kernel().vmstat().pgdemoteKswapd, 0u);
}

TEST(Engine, FileReadPopulatesPageCache)
{
    Engine eng(tinyConfig(1));
    ThreadContext &t = eng.thread(0);
    const Addr f = eng.registerFile(8 * kPageSize, "in.sg");
    const Cycles before = t.clock();
    eng.fileReadPage(t, pageOf(f));
    EXPECT_GT(t.clock(), before);  // Disk fetch charged.
    const Cycles mid = t.clock();
    eng.fileReadPage(t, pageOf(f));
    EXPECT_EQ(t.clock(), mid);  // Cached: free.
    EXPECT_EQ(eng.kernel().numastat().cachePages[0], 1u);
}

TEST(Engine, GlobalTimeIsMaxClock)
{
    Engine eng(tinyConfig(3));
    eng.thread(1).setClock(5000);
    EXPECT_EQ(eng.globalTime(), 5000u);
    eng.barrier();
    EXPECT_GE(eng.thread(0).clock(), 5000u);
}

TEST(Engine, ObserverLatencyPositive)
{
    Engine eng(tinyConfig(1));
    RecordingObserver obs;
    eng.setObserver(&obs);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, kPageSize, 0, "obj");
    eng.load(t, a);
    ASSERT_EQ(obs.records.size(), 1u);
    EXPECT_GT(obs.records[0].latency, 0u);
    EXPECT_EQ(obs.records[0].level, MemLevel::DRAM);
    EXPECT_EQ(obs.records[0].op, MemOp::Load);
}

TEST(Engine, AutonumaDisabledHasNoPolicy)
{
    SystemConfig cfg = tinyConfig(1);
    cfg.autonumaEnabled = false;
    Engine eng(cfg);
    EXPECT_EQ(eng.autonuma(), nullptr);
}

TEST(Engine, AutonumaEnabledScansEventually)
{
    SystemConfig cfg = tinyConfig(1);
    cfg.autonuma.scanPeriod = secondsToCycles(0.0001);
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 64 * kPageSize, 0, "obj");
    for (int pass = 0; pass < 20; ++pass) {
        for (Addr off = 0; off < 64 * kPageSize; off += kLineSize)
            eng.load(t, a + off);
    }
    ASSERT_NE(eng.autonuma(), nullptr);
    EXPECT_GT(eng.autonuma()->stats().pagesScanned, 0u);
    EXPECT_GT(eng.kernel().vmstat().numaHintFaults, 0u);
}

// Parameterized: thread-count sweep for parallelFor coverage invariants.
class ParallelForSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ParallelForSweep, SumMatchesAnyThreadCount)
{
    Engine eng(tinyConfig(GetParam()));
    std::uint64_t sum = 0;
    eng.parallelFor(257, [&](ThreadContext &, std::uint64_t i) {
        sum += i;
    });
    EXPECT_EQ(sum, 257u * 256u / 2u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForSweep,
                         ::testing::Values(1, 2, 3, 7, 18));

}  // namespace
}  // namespace memtier

/**
 * @file
 * Tests for the multi-threaded host executor and the parallel copy
 * engine's kernel integration: bit-identity of single-host-thread runs
 * with the pre-parallel goldens, replay determinism at a fixed host
 * thread count, output-checksum invariance across thread counts, the
 * translation-epoch race stress (remaps and migrations racing
 * accessBatch under the invariant checker, 4 KiB and THP), serving
 * determinism, and the vmstat surface of the copy engine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "exp/runner.h"
#include "os/kernel.h"
#include "os/physical_memory.h"
#include "sim/engine.h"

namespace memtier {
namespace {

/** Shootdown sink for kernel-level tests (engine not involved). */
class NullShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum) override {}
    void tlbShootdownHuge(PageNum) override {}
};

/**
 * Fast touches exist only on the batched access path, so the
 * counter-moved assertions below are vacuous under the CI pass that
 * forces the scalar reference path.
 */
bool
scalarPathForced()
{
    const char *env = std::getenv("MEMTIER_SCALAR_PATH");
    return env != nullptr &&
           (std::strcmp(env, "ON") == 0 || std::strcmp(env, "on") == 0 ||
            std::strcmp(env, "1") == 0);
}

/** A migration-heavy PageRank run (DRAM overcommitted ~4x). */
RunConfig
parallelConfig(App app)
{
    RunConfig rc;
    rc.workload.app = app;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.sampling = false;  // Observers force the serial path by design.
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    return rc;
}

/** Everything that must replay bit-identically for a fixed config. */
void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.loadSeconds, b.loadSeconds);
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_EQ(a.totalAccesses, b.totalAccesses);
    EXPECT_EQ(std::memcmp(&a.vmstat, &b.vmstat, sizeof(VmStat)), 0);
    for (int l = 0; l < kNumMemLevels; ++l)
        EXPECT_EQ(a.levelCounts[l], b.levelCounts[l]);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].sec, b.timeline[i].sec);
        EXPECT_EQ(std::memcmp(&a.timeline[i].vm, &b.timeline[i].vm,
                              sizeof(VmStat)),
                  0);
    }
    EXPECT_EQ(a.copyBytes, b.copyBytes);
    EXPECT_EQ(a.copyChargedCycles, b.copyChargedCycles);
}

// ----------------------------------------------- Golden preservation

// hostThreads=1 must be indistinguishable from a build that predates
// the executor: same simulation, and none of the new counters move.
TEST(HostExecGolden, OneHostThreadBitIdenticalToDefault)
{
    RunConfig rc = parallelConfig(App::PR);
    const RunResult def = runWorkload(rc);
    rc.sys.hostThreads = 1;
    const RunResult one = runWorkload(rc);
    expectSameSimulation(def, one);
    EXPECT_EQ(one.vmstat.hostFastTouches, 0u);
    EXPECT_EQ(one.vmstat.pgcopyChunks, 0u);
    EXPECT_EQ(one.vmstat.pgcopyParallel, 0u);
    // The engine still metered bytes for bandwidth reporting.
    EXPECT_GT(one.copyBytes, 0u);
    EXPECT_GT(one.copyChargedCycles, 0u);
}

// Fixed host thread count => repeated runs replay bit-identically.
TEST(HostExecGolden, ReplayIsDeterministicAtFixedThreadCount)
{
    RunConfig rc = parallelConfig(App::PR);
    rc.sys.hostThreads = 3;
    const RunResult a = runWorkload(rc);
    const RunResult b = runWorkload(rc);
    expectSameSimulation(a, b);
    if (!scalarPathForced()) {
        EXPECT_GT(a.vmstat.hostFastTouches, 0u);
    }
}

// The application's *answer* must not depend on the host thread count,
// even though the simulated interleaving legitimately differs.
TEST(HostExecGolden, OutputChecksumInvariantAcrossThreadCounts)
{
    RunConfig rc = parallelConfig(App::PR);
    const RunResult serial = runWorkload(rc);
    rc.sys.hostThreads = 4;
    const RunResult par = runWorkload(rc);
    EXPECT_EQ(par.outputChecksum, serial.outputChecksum);
    if (!scalarPathForced()) {
        EXPECT_GT(par.vmstat.hostFastTouches, 0u);
    }
}

TEST(HostExecGolden, EnvOverrideMatchesConfigField)
{
    RunConfig rc = parallelConfig(App::PR);
    rc.sys.hostThreads = 4;
    const RunResult cfg_run = runWorkload(rc);

    RunConfig env_rc = parallelConfig(App::PR);
    ASSERT_EQ(setenv("MEMTIER_HOST_THREADS", "4", 1), 0);
    const RunResult env_run = runWorkload(env_rc);
    ASSERT_EQ(unsetenv("MEMTIER_HOST_THREADS"), 0);
    expectSameSimulation(cfg_run, env_run);
}

// ------------------------------------------------ Copy-engine surface

TEST(CopyEngineVmstat, ParallelCountersSurfaceOnlyWhenParallel)
{
    RunConfig rc = parallelConfig(App::PR);
    const RunResult serial = runWorkload(rc);
    EXPECT_EQ(serial.vmstat.pgcopyChunks, 0u);
    EXPECT_EQ(serial.vmstat.pgcopyQueuedChunks, 0u);
    EXPECT_EQ(serial.vmstat.pgcopyBusyCycles, 0u);

    rc.sys.kernel.copyThreads = 4;
    const RunResult par = runWorkload(rc);
    EXPECT_GT(par.vmstat.pgcopyChunks, 0u);
    EXPECT_GT(par.vmstat.pgcopyBusyCycles, 0u);
    // Faster copies legitimately change the simulated trajectory (the
    // machine is different), but never the application's answer.
    EXPECT_EQ(par.outputChecksum, serial.outputChecksum);
}

/**
 * Deterministic huge-promotion storm: land 8 huge pages on NVM behind
 * a DRAM filler, free the filler, then promote each 2 MiB page with
 * plenty of simulated time between copies (idle pool). Returns the
 * copy engine's effective bandwidth in bytes/second. This is the same
 * measurement bench/parallel_scaling gates in CI.
 */
double
promotionStormBandwidth(std::uint32_t copy_workers, VmStat *vm_out)
{
    KernelParams kp;
    kp.thp.enabled = true;
    kp.copyThreads = copy_workers;
    PhysicalMemory phys(
        makeDramParams(12 * kPagesPerHuge * kPageSize),
        makeNvmParams(16 * kPagesPerHuge * kPageSize));
    Kernel kern(phys, kp);
    NullShootdown sink;
    kern.setShootdownClient(&sink);

    // Occupy DRAM so the huge allocations land on NVM.
    const Addr filler =
        kern.mmap(0, 12 * kPagesPerHuge * kPageSize, 0, "filler");
    for (std::uint64_t i = 0; i < 12 * kPagesPerHuge; ++i)
        kern.touchPage(pageOf(filler) + i, 1000 + i, MemOp::Store);

    constexpr int kHuge = 8;
    PageNum bases[kHuge];
    for (int h = 0; h < kHuge; ++h) {
        const Addr a = kern.mmap(0, kHugePageSize, 1 + h, "huge");
        kern.touchPage(pageOf(a), 900000 + h, MemOp::Store);
        bases[h] = pageOf(a);
        EXPECT_TRUE(kern.isHugeMapped(bases[h]));
        EXPECT_EQ(kern.nodeOf(bases[h]), MemNode::NVM);
    }
    kern.munmap(1000000, filler);

    Cycles now = 2000000;
    for (int h = 0; h < kHuge; ++h) {
        EXPECT_GT(kern.promotePage(bases[h] + 123, now), 0u);
        EXPECT_TRUE(kern.isHugeMapped(bases[h]));
        now += 10000000;  // Pool drains fully between copies.
    }
    if (vm_out != nullptr)
        *vm_out = kern.vmstat();
    const CopyEngine &ce = kern.copyEngine();
    EXPECT_GE(ce.bytesCopied(), kHuge * kHugePageSize);
    return static_cast<double>(ce.bytesCopied()) /
           cyclesToSeconds(ce.chargedCycles());
}

TEST(CopyEngineVmstat, FourWorkersSpeedUpMigrationBandwidth)
{
    // THP promotions move 2 MiB per copy -- the copies that actually
    // fan out. (A 4 KiB promotion is a single chunk on any pool.)
    VmStat vm1, vm4;
    const double bw1 = promotionStormBandwidth(1, &vm1);
    const double bw4 = promotionStormBandwidth(4, &vm4);
    // The bench gates >= 2x at 4 workers on this same storm; an idle
    // pool actually reaches 4x (32 equal chunks over 4 workers).
    EXPECT_GE(bw4, 2.0 * bw1);
    // The vmstat surface: counters move only on the parallel pool.
    EXPECT_EQ(vm1.pgcopyParallel, 0u);
    EXPECT_EQ(vm1.pgcopyChunks, 0u);
    EXPECT_GE(vm4.pgcopyParallel, 8u);
    EXPECT_GT(vm4.pgcopyChunks, 0u);
}

// ------------------------------------- Translation-epoch race stress

/**
 * One thread group remaps its private region every pass (epoch bumps
 * through the round protocol) while the other groups hammer a shared
 * region that AutoNUMA concurrently scans, migrates and demotes. The
 * invariant checker audits every micro-cache against the page table,
 * so a single stale translation surviving an epoch bump fails the run.
 */
void
runEpochRaceStress(bool thp)
{
    SystemConfig cfg;
    cfg.numThreads = 8;
    cfg.hostThreads = 4;
    cfg.checkInvariants = true;
    cfg.invariantCheckPeriod = 256;
    cfg.dram = makeDramParams(thp ? 4 * kMiB : 128 * kPageSize);
    cfg.nvm = makeNvmParams(thp ? 32 * kMiB : 4096 * kPageSize);
    cfg.autonuma.scanPeriod = secondsToCycles(0.0002);
    cfg.autonuma.adjustPeriod = secondsToCycles(0.001);
    // Admit whole huge pages through the migration rate limiter.
    cfg.autonuma.rateLimitBytesPerSec = 64 * kMiB;
    cfg.thp.enabled = thp;
    Engine eng(cfg);
    ThreadContext &t0 = eng.thread(0);

    const std::uint64_t shared_pages = thp ? 4 * kPagesPerHuge : 512;
    const Addr shared =
        eng.sysMmap(t0, shared_pages * kPageSize, 0, "shared");
    Addr scratch = eng.sysMmap(t0, 16 * kPageSize, 1, "scratch");

    for (int pass = 0; pass < 8; ++pass) {
        eng.parallelForRanges(
            shared_pages,
            [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                if (b == 0) {
                    // Remap in flight: munmap + mmap bump the epoch
                    // while every other worker is mid-accessBatch.
                    eng.sysMunmap(t, scratch);
                    scratch = eng.sysMmap(t, 16 * kPageSize, 1,
                                          "scratch");
                    for (std::uint64_t i = 0; i < 16; ++i)
                        eng.store(t, scratch + i * kPageSize);
                }
                // Line-strided batched sweep: enough simulated cycles
                // that scans/kswapd fire *during* the region, racing
                // the micro-caches with real migrations.
                eng.accessRange(t, shared + b * kPageSize,
                                (e - b) * (kPageSize / kLineSize),
                                kLineSize, MemOp::Load);
                for (std::uint64_t i = b; i < e; i += 4)
                    eng.store(t, shared + i * kPageSize);
            },
            16, RegionMode::WriteDisjoint);
    }

    ASSERT_NE(eng.invariantChecker(), nullptr);
    eng.invariantChecker()->checkNow(eng.globalTime());
    EXPECT_GT(eng.invariantChecker()->checksRun(), 0u);
    if (!scalarPathForced()) {
        EXPECT_GT(eng.kernel().vmstat().hostFastTouches, 0u);
    }
    // The stress only means something if migrations actually raced the
    // accesses: scans must have queued and moved pages.
    EXPECT_GT(eng.kernel().vmstat().pgmigrateSuccess, 0u);
}

TEST(EpochRaceStress, MicroCachesRevalidateUnderMigration4k)
{
    runEpochRaceStress(/*thp=*/false);
}

TEST(EpochRaceStress, MicroCachesRevalidateUnderMigrationThp)
{
    runEpochRaceStress(/*thp=*/true);
}

// --------------------------------------------- Serving determinism

// The serving driver replays an arrival-ordered open-loop trace, which
// is inherently sequential: any host thread count must produce the
// same report, bit for bit.
TEST(ServingParallel, ReportIdenticalAcrossHostThreadCounts)
{
    RunConfig rc;
    rc.workload.app = App::KV;
    rc.workload.kind = GraphKind::Kron;  // Zipfian popularity.
    rc.workload.scale = 10;
    rc.workload.trials = 1;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);

    const RunResult serial = runWorkload(rc);
    rc.sys.hostThreads = 4;
    const RunResult par = runWorkload(rc);
    ASSERT_TRUE(serial.hasServing);
    ASSERT_TRUE(par.hasServing);
    EXPECT_EQ(par.serving.checksum, serial.serving.checksum);
    EXPECT_EQ(par.serving.requests, serial.serving.requests);
    EXPECT_EQ(par.serving.latency.percentile(0.99),
              serial.serving.latency.percentile(0.99));
    expectSameSimulation(serial, par);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Tests for the policy subsystem: the tunables map, the registry, the
 * sweep cross product, the kernel's exchange/veto hooks, and the
 * regression guarantee that "autonuma" selected through the registry is
 * bit-identical to the pre-registry AutoNUMA path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"
#include "os/kernel.h"
#include "os/physical_memory.h"
#include "policy/exchange_policy.h"
#include "policy/policy_registry.h"
#include "policy/static_policies.h"
#include "policy/tunables.h"
#include "thp/thp_params.h"

namespace memtier {
namespace {

// -------------------------------------------------------- PolicyTunables

TEST(PolicyTunables, ParsesAssignments)
{
    PolicyTunables t;
    EXPECT_TRUE(t.parseAssignment("scan_period_ms=10"));
    EXPECT_TRUE(t.has("scan_period_ms"));
    EXPECT_EQ(t.getU64("scan_period_ms", 0), 10u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(PolicyTunables, RejectsMalformedAssignments)
{
    PolicyTunables t;
    std::string error;
    EXPECT_FALSE(t.parseAssignment("no_equals_sign", &error));
    EXPECT_NE(error.find("expected key=value"), std::string::npos);
    EXPECT_FALSE(t.parseAssignment("=value_without_key", &error));
    EXPECT_NE(error.find("expected key=value"), std::string::npos);
    EXPECT_FALSE(t.parseAssignment("k=", &error));
    EXPECT_NE(error.find("empty value"), std::string::npos);
    EXPECT_NE(error.find("'k'"), std::string::npos);
    EXPECT_EQ(t.size(), 0u);
}

TEST(PolicyTunables, DuplicateAssignmentIsAnError)
{
    PolicyTunables t;
    std::string error;
    EXPECT_TRUE(t.parseAssignment("k=1", &error));
    EXPECT_FALSE(t.parseAssignment("k=2", &error));
    EXPECT_NE(error.find("duplicate tunable 'k'"), std::string::npos);
    EXPECT_NE(error.find("'1'"), std::string::npos);
    // The first assignment survives untouched.
    EXPECT_EQ(t.getU64("k", 0), 1u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(PolicyTunables, TypedGettersFallBackWhenAbsent)
{
    PolicyTunables t;
    EXPECT_EQ(t.getU64("missing", 42), 42u);
    EXPECT_DOUBLE_EQ(t.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(t.getMillis("missing", 1234), Cycles{1234});
}

TEST(PolicyTunables, MillisConvertToCycles)
{
    PolicyTunables t;
    t.set("period", "2");
    EXPECT_EQ(t.getMillis("period", 0), secondsToCycles(0.002));
    t.set("period", "0.5");
    EXPECT_EQ(t.getMillis("period", 0), secondsToCycles(0.0005));
}

TEST(PolicyTunables, UnknownKeysAgainstAllowList)
{
    PolicyTunables t;
    t.set("good", "1");
    t.set("bogus", "2");
    const std::vector<std::string> unknown = t.unknownKeys({"good"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "bogus");
    EXPECT_TRUE(t.unknownKeys({"good", "bogus"}).empty());
}

TEST(PolicyTunables, AssignmentsRoundTrip)
{
    PolicyTunables t;
    t.set("b", "2");
    t.set("a", "1");
    EXPECT_EQ(t.assignments(),
              (std::vector<std::string>{"a=1", "b=2"}));
}

// --------------------------------------------------------------- Sweep

TEST(Sweep, NoAxesYieldsOneEmptyCombination)
{
    const auto combos = sweepCombinations({});
    ASSERT_EQ(combos.size(), 1u);
    EXPECT_TRUE(combos[0].empty());
}

TEST(Sweep, CrossProductFirstAxisSlowest)
{
    const std::vector<SweepAxis> axes = {
        {"a", {"1", "2"}},
        {"b", {"x", "y", "z"}},
    };
    const auto combos = sweepCombinations(axes);
    ASSERT_EQ(combos.size(), 6u);
    EXPECT_EQ(combos.front(),
              (std::vector<std::pair<std::string, std::string>>{
                  {"a", "1"}, {"b", "x"}}));
    EXPECT_EQ(combos.back(),
              (std::vector<std::pair<std::string, std::string>>{
                  {"a", "2"}, {"b", "z"}}));
}

// ------------------------------------------------------- PolicyRegistry

/** A machine with tiny tiers so capacity effects are easy to trigger. */
class PolicyKernelTest : public ::testing::Test
{
  protected:
    PolicyKernelTest()
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, KernelParams{})
    {
        kern.setShootdownClient(&shootdown);
    }

    /** mmap @p pages pages and touch each once (first-touch allocate). */
    Addr
    populate(std::uint64_t pages, Cycles start = 1000)
    {
        const Addr base = kern.mmap(start, pages * kPageSize, 1, "test");
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(base) + i, start + i, MemOp::Store);
        return base;
    }

    /** First populated page currently resident on @p node. */
    PageNum
    findResident(Addr base, std::uint64_t pages, MemNode node) const
    {
        for (std::uint64_t i = 0; i < pages; ++i) {
            if (kern.nodeOf(pageOf(base) + i) == node)
                return pageOf(base) + i;
        }
        return kNoPage;
    }

    class CountingShootdown : public TlbShootdownClient
    {
      public:
        void tlbShootdown(PageNum) override { ++count; }
        std::uint64_t count = 0;
    };

    static constexpr std::uint64_t kDramPages = 64;
    static constexpr std::uint64_t kNvmPages = 512;

    PhysicalMemory phys;
    CountingShootdown shootdown;
    Kernel kern;
};

TEST_F(PolicyKernelTest, RegistryListsBuiltinsSorted)
{
    const std::vector<std::string> names =
        PolicyRegistry::instance().names();
    EXPECT_EQ(names, (std::vector<std::string>{
                         "autonuma", "autotune", "dram-only",
                         "exchange", "interleave"}));
    for (const std::string &name : names) {
        EXPECT_TRUE(PolicyRegistry::instance().contains(name));
        EXPECT_FALSE(
            PolicyRegistry::instance().description(name).empty());
    }
    EXPECT_FALSE(PolicyRegistry::instance().contains("nope"));
}

TEST_F(PolicyKernelTest, RegistryCreatesEveryBuiltin)
{
    for (const std::string &name :
         PolicyRegistry::instance().names()) {
        PolicyContext ctx{kern, AutoNumaParams{}, PolicyTunables{}};
        std::string error;
        const auto policy =
            PolicyRegistry::instance().create(name, ctx, &error);
        ASSERT_NE(policy, nullptr) << name << ": " << error;
        EXPECT_EQ(policy->name(), name);
        // Reset: the static policies attach themselves on construction.
        kern.setTieringPolicy(nullptr);
    }
}

TEST_F(PolicyKernelTest, RegistryRejectsUnknownName)
{
    PolicyContext ctx{kern, AutoNumaParams{}, PolicyTunables{}};
    std::string error;
    EXPECT_EQ(PolicyRegistry::instance().create("numad", ctx, &error),
              nullptr);
    EXPECT_NE(error.find("unknown policy 'numad'"), std::string::npos);
    EXPECT_NE(error.find("autonuma"), std::string::npos);  // Suggests.
}

TEST_F(PolicyKernelTest, RegistryRejectsUnknownTunable)
{
    PolicyContext ctx{kern, AutoNumaParams{}, PolicyTunables{}};
    ctx.tunables.set("exchange_batch", "8");  // An exchange-only key.
    std::string error;
    EXPECT_EQ(
        PolicyRegistry::instance().create("autonuma", ctx, &error),
        nullptr);
    EXPECT_NE(error.find("exchange_batch"), std::string::npos);
}

TEST_F(PolicyKernelTest, RegistryAppliesTunables)
{
    PolicyContext ctx{kern, AutoNumaParams{}, PolicyTunables{}};
    ctx.tunables.set("scan_period_ms", "7");
    std::string error;
    const auto policy =
        PolicyRegistry::instance().create("autonuma", ctx, &error);
    ASSERT_NE(policy, nullptr) << error;
    EXPECT_EQ(policy->scanPeriod(), secondsToCycles(0.007));
    kern.setTieringPolicy(nullptr);
}

// ------------------------------------------------------- Exchange hooks

TEST_F(PolicyKernelTest, ExchangeSwapsResidenceKeepingTierCounts)
{
    // Overfill DRAM so the tail of the region lands on NVM.
    const std::uint64_t pages = kDramPages + 32;
    const Addr base = populate(pages);
    const PageNum up = findResident(base, pages, MemNode::NVM);
    ASSERT_NE(up, kNoPage);

    const PageNum down = kern.pickExchangeVictim(500000);
    ASSERT_NE(down, kNoPage);
    ASSERT_EQ(kern.nodeOf(down), MemNode::DRAM);

    const std::uint64_t dram_used = phys.dram().usedPages();
    const std::uint64_t nvm_used = phys.nvm().usedPages();
    const std::uint64_t shootdowns = shootdown.count;

    const Cycles cost = kern.exchangePages(up, down, 600000);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(kern.nodeOf(up), MemNode::DRAM);
    EXPECT_EQ(kern.nodeOf(down), MemNode::NVM);

    // The exchange must never change per-tier resident counts: no
    // frame is created or destroyed, the two pages trade places.
    EXPECT_EQ(phys.dram().usedPages(), dram_used);
    EXPECT_EQ(phys.nvm().usedPages(), nvm_used);
    EXPECT_EQ(kern.vmstat().pgexchangeSuccess, 1u);
    EXPECT_EQ(kern.vmstat().pgmigrateSuccess, 2u);
    EXPECT_EQ(shootdown.count, shootdowns + 2);  // Both mappings.

    // Both pages stay present and touchable without a page fault.
    EXPECT_FALSE(kern.touchPage(up, 700000, MemOp::Load).pageFault);
    EXPECT_FALSE(kern.touchPage(down, 700001, MemOp::Load).pageFault);
}

TEST_F(PolicyKernelTest, ExchangeBackCountsThrash)
{
    const std::uint64_t pages = kDramPages + 32;
    const Addr base = populate(pages);
    const PageNum up = findResident(base, pages, MemNode::NVM);
    const PageNum down = kern.pickExchangeVictim(500000);
    ASSERT_NE(up, kNoPage);
    ASSERT_NE(down, kNoPage);

    ASSERT_GT(kern.exchangePages(up, down, 600000), 0u);
    // Swapping straight back pushes the exchanged-in page out again:
    // that is exchange thrash, the failure mode the protection window
    // exists to prevent.
    ASSERT_GT(kern.exchangePages(down, up, 700000), 0u);
    EXPECT_EQ(kern.vmstat().pgexchangeSuccess, 2u);
    EXPECT_EQ(kern.vmstat().pgexchangeThrash, 1u);
    EXPECT_GE(kern.vmstat().pgpromoteDemoted, 1u);
}

TEST_F(PolicyKernelTest, ExchangeRejectsWrongResidence)
{
    const std::uint64_t pages = kDramPages + 32;
    const Addr base = populate(pages);
    const PageNum dram_page = findResident(base, pages, MemNode::DRAM);
    const PageNum nvm_page = findResident(base, pages, MemNode::NVM);
    ASSERT_NE(dram_page, kNoPage);
    ASSERT_NE(nvm_page, kNoPage);

    // Arguments reversed / unmapped pages: no-op, no counter movement.
    EXPECT_EQ(kern.exchangePages(dram_page, nvm_page, 600000), 0u);
    EXPECT_EQ(kern.exchangePages(nvm_page, nvm_page, 600000), 0u);
    EXPECT_EQ(kern.exchangePages(kNoPage, dram_page, 600000), 0u);
    EXPECT_EQ(kern.vmstat().pgexchangeSuccess, 0u);
    EXPECT_EQ(kern.vmstat().pgmigrateSuccess, 0u);
}

// ---------------------------------------------------------- Veto hooks

TEST_F(PolicyKernelTest, VetoedDemotionLeavesPageTableConsistent)
{
    DramOnlyPolicy policy(kern);  // Attaches itself; vetoes everything.
    const std::uint64_t pages = kDramPages + 32;
    const Addr base = populate(pages);

    std::vector<MemNode> nodes_before;
    for (std::uint64_t i = 0; i < pages; ++i)
        nodes_before.push_back(kern.nodeOf(pageOf(base) + i));
    const std::uint64_t dram_used = phys.dram().usedPages();
    const std::uint64_t nvm_used = phys.nvm().usedPages();

    // DRAM is packed solid, so kswapd wants to demote -- and the
    // policy vetoes every proposal. The bounded veto budget guarantees
    // this returns instead of spinning.
    kern.kswapdTick(500000);

    EXPECT_EQ(kern.vmstat().pgdemoteKswapd, 0u);
    EXPECT_EQ(kern.vmstat().pgdemoteDirect, 0u);
    EXPECT_GT(kern.vmstat().pgdemoteVetoed, 0u);
    EXPECT_EQ(phys.dram().usedPages(), dram_used);
    EXPECT_EQ(phys.nvm().usedPages(), nvm_used);

    // Every page is still mapped, resident where it was, and touchable
    // without a fault.
    for (std::uint64_t i = 0; i < pages; ++i) {
        const PageNum vpn = pageOf(base) + i;
        const PageMeta *meta = kern.pageMeta(vpn);
        ASSERT_NE(meta, nullptr);
        EXPECT_TRUE(meta->present);
        EXPECT_EQ(meta->node, nodes_before[i]);
        EXPECT_FALSE(
            kern.touchPage(vpn, 600000 + i, MemOp::Load).pageFault);
    }
    EXPECT_EQ(policy.stats().demotionsVetoed,
              kern.vmstat().pgdemoteVetoed);
    kern.setTieringPolicy(nullptr);
}

// ------------------------------------------- AutoNUMA regression golden
//
// The exact VmStat deltas and output checksum this workload produced on
// the pre-registry seed tree, recaptured when the batched access
// pipeline restructured the apps' issue order and again when PageRank's
// gather phase moved to per-range bulk reads (which drop the duplicate
// per-vertex offset loads, shifting fault and migration timing; the
// page-fault count and output checksum were unchanged by both
// recaptures). The registry path must reproduce them bit for bit -- any
// drift means a refactor changed AutoNUMA behaviour.
// The hotpath golden tests separately assert that the batched and
// forced-scalar paths both produce exactly these numbers.

RunConfig
goldenConfig()
{
    RunConfig rc;
    rc.workload.app = App::PR;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 13;
    rc.workload.trials = 8;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    rc.sys.autonuma.rateLimitBytesPerSec = 4 * kMiB;
    return rc;
}

void
expectGolden(const RunResult &r)
{
    EXPECT_EQ(r.vmstat.pgfault, 249u);
    EXPECT_EQ(r.vmstat.numaHintFaults, 1984u);
    EXPECT_EQ(r.vmstat.pgpromoteSuccess, 805u);
    EXPECT_EQ(r.vmstat.pgpromoteDemoted, 631u);
    EXPECT_EQ(r.vmstat.pgdemoteKswapd, 213u);
    EXPECT_EQ(r.vmstat.pgdemoteDirect, 640u);
    EXPECT_EQ(r.vmstat.pgdemoteVetoed, 0u);
    EXPECT_EQ(r.vmstat.pgexchangeSuccess, 0u);
    EXPECT_EQ(r.vmstat.pgexchangeThrash, 0u);
    EXPECT_EQ(r.vmstat.pgmigrateSuccess, 1658u);
    EXPECT_EQ(r.vmstat.promoteCandidates, 805u);
    EXPECT_EQ(r.vmstat.promoteRateLimited, 0u);
    EXPECT_EQ(r.vmstat.pageCacheDrops, 0u);
    EXPECT_EQ(r.outputChecksum, 0xb5d59696c650f8d5ull);
    EXPECT_DOUBLE_EQ(r.totalSeconds, 0.010627439615384615);
}

// The goldens were captured with 4 KiB pages only; MEMTIER_THP=ON
// legitimately changes every counter, so the exact-value comparison
// only holds without it.
#define SKIP_UNDER_FORCED_THP()                                          \
    do {                                                                 \
        if (thpForcedByEnv())                                            \
            GTEST_SKIP() << "golden values captured with THP off";       \
    } while (0)

TEST(AutoNumaRegression, LegacyModePathMatchesSeed)
{
    SKIP_UNDER_FORCED_THP();
    const RunResult r = runWorkload(goldenConfig());
    EXPECT_TRUE(r.hasAutoNuma);
    expectGolden(r);
}

TEST(AutoNumaRegression, RegistryPathMatchesSeed)
{
    SKIP_UNDER_FORCED_THP();
    RunConfig rc = goldenConfig();
    rc.policy = "autonuma";
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.policyName, "autonuma");
    EXPECT_FALSE(r.policyCounters.empty());
    expectGolden(r);
}

TEST(AutoNumaRegression, TunablesExpressTheSameConfig)
{
    SKIP_UNDER_FORCED_THP();
    RunConfig rc = goldenConfig();
    // Wipe the struct-level overrides and express them as registry
    // tunables instead; the run must still match the golden values.
    rc.sys.autonuma = AutoNumaParams{};
    rc.policy = "autonuma";
    rc.tunables = {"scan_period_ms=0.5", "adjust_period_ms=2",
                   "rate_limit_kib=4096"};
    expectGolden(runWorkload(rc));
}

TEST(AutoNumaRegression, EffectiveTunablesReflectConstruction)
{
    SKIP_UNDER_FORCED_THP();
    RunConfig rc = goldenConfig();
    rc.sys.autonuma = AutoNumaParams{};
    rc.policy = "autonuma";
    rc.tunables = {"scan_period_ms=0.5", "adjust_period_ms=2",
                   "rate_limit_kib=4096"};
    const RunResult r = runWorkload(rc);
    auto value = [&](const std::string &k) -> std::string {
        for (const auto &[key, v] : r.effectiveTunables) {
            if (key == k)
                return v;
        }
        return "<missing>";
    };
    // Nothing tuned at runtime: the effective values are exactly the
    // construction-time assignments (plus kernel/policy defaults).
    EXPECT_EQ(value("scan_period_ms"), "0.5");
    EXPECT_EQ(value("adjust_period_ms"), "2");
    EXPECT_EQ(value("rate_limit_kib"), "4096");
    EXPECT_EQ(value("copy_threads"), "1");
}

TEST(AutoNumaRegression, AutotuneObserveOnlyMatchesSeed)
{
    SKIP_UNDER_FORCED_THP();
    RunConfig rc = goldenConfig();
    rc.sys.autonuma = AutoNumaParams{};
    // The autotune wrapper with max_steps=0 observes every epoch but
    // never writes the registry: the wrapped autonuma run must stay
    // bit-identical to the seed golden.
    rc.policy = "autotune";
    rc.tunables = {"base=autonuma", "max_steps=0",
                   "scan_period_ms=0.5", "adjust_period_ms=2",
                   "rate_limit_kib=4096"};
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.policyName, "autotune");
    EXPECT_FALSE(r.metricsEpochs.empty());
    expectGolden(r);
}

// --------------------------------------------------- Policy end-to-end

TEST(PolicyEndToEnd, StaticPoliciesNeverMigrate)
{
    RunConfig rc = goldenConfig();
    rc.policy = "dram-only";
    const RunResult dram_only = runWorkload(rc);
    EXPECT_EQ(dram_only.policyName, "dram-only");
    EXPECT_EQ(dram_only.vmstat.pgmigrateSuccess, 0u);
    EXPECT_EQ(dram_only.vmstat.pgpromoteSuccess, 0u);
    EXPECT_EQ(dram_only.vmstat.pgdemoteKswapd, 0u);
    EXPECT_EQ(dram_only.vmstat.pgdemoteDirect, 0u);
    EXPECT_EQ(dram_only.vmstat.numaHintFaults, 0u);

    rc.policy = "interleave";
    const RunResult interleave = runWorkload(rc);
    EXPECT_EQ(interleave.vmstat.pgmigrateSuccess, 0u);
    // Interleave really stripes: first touches land on both tiers.
    // (finalNumastat is useless here -- the runner unmaps the graph
    // before harvesting, so resident counts are zero by then.)
    std::uint64_t to_dram = 0;
    std::uint64_t to_nvm = 0;
    for (const auto &[key, value] : interleave.policyCounters) {
        if (key == "first_touch_dram")
            to_dram = value;
        if (key == "first_touch_nvm")
            to_nvm = value;
    }
    EXPECT_GT(to_dram, 0u);
    EXPECT_GT(to_nvm, 0u);

    // Placement must never change application output.
    EXPECT_EQ(dram_only.outputChecksum, interleave.outputChecksum);
    EXPECT_EQ(dram_only.outputChecksum, 0xb5d59696c650f8d5ull);
}

TEST(PolicyEndToEnd, ExchangePolicyExchanges)
{
    RunConfig rc = goldenConfig();
    rc.policy = "exchange";
    rc.tunables = {"scan_period_ms=0.5", "protect_ms=2"};
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.policyName, "exchange");
    EXPECT_GT(r.vmstat.pgexchangeSuccess, 0u);
    // The whole point: hot/cold swaps replace most reclaim demotions.
    EXPECT_LT(r.vmstat.pgdemoteKswapd + r.vmstat.pgdemoteDirect,
              r.vmstat.pgexchangeSuccess);
    EXPECT_EQ(r.outputChecksum, 0xb5d59696c650f8d5ull);
}

}  // namespace
}  // namespace memtier

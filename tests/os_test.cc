/**
 * @file
 * Unit tests for the OS substrate: address space, page table, fault
 * handling with NUMA policies, page cache, reclaim/demotion and the
 * vmstat counters.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <type_traits>

#include "os/address_space.h"
#include "os/kernel.h"
#include "os/page_table.h"
#include "os/physical_memory.h"

namespace memtier {
namespace {

/** Counts shootdowns so tests can assert TLB coherence actions. */
class RecordingShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum vpn) override
    {
        ++count;
        last = vpn;
    }

    std::uint64_t count = 0;
    PageNum last = 0;
};

/** A machine with tiny tiers so capacity effects are easy to trigger. */
class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : phys(makeDramParams(kDramPages * kPageSize),
               makeNvmParams(kNvmPages * kPageSize)),
          kern(phys, KernelParams{})
    {
        kern.setShootdownClient(&shootdown);
    }

    /** Touch every page of [start, start+pages) once. */
    void
    touchRange(Addr start, std::uint64_t pages, Cycles now = 1000)
    {
        for (std::uint64_t i = 0; i < pages; ++i)
            kern.touchPage(pageOf(start) + i, now + i, MemOp::Store);
    }

    static constexpr std::uint64_t kDramPages = 256;
    static constexpr std::uint64_t kNvmPages = 1024;

    PhysicalMemory phys;
    RecordingShootdown shootdown;
    Kernel kern;
};

// --------------------------------------------------------- AddressSpace

TEST(AddressSpace, MmapRoundsToPages)
{
    AddressSpace space;
    const Addr a = space.mmap(100, 0, "x");
    const Vma *vma = space.find(a);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->pages(), 1u);
    EXPECT_EQ(vma->site, "x");
}

TEST(AddressSpace, GuardPageSeparatesRegions)
{
    AddressSpace space;
    const Addr a = space.mmap(kPageSize, 0, "a");
    const Addr b = space.mmap(kPageSize, 1, "b");
    EXPECT_GE(b, a + 2 * kPageSize);  // One guard page minimum.
    EXPECT_EQ(space.find(a + kPageSize), nullptr);  // Guard unmapped.
}

TEST(AddressSpace, FindByInteriorAddress)
{
    AddressSpace space;
    const Addr a = space.mmap(4 * kPageSize, 7, "r");
    const Vma *vma = space.find(a + 3 * kPageSize + 17);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->object, 7);
}

TEST(AddressSpace, MunmapRemoves)
{
    AddressSpace space;
    const Addr a = space.mmap(kPageSize, 0, "r");
    const Vma removed = space.munmap(a);
    EXPECT_EQ(removed.start, a);
    EXPECT_EQ(space.find(a), nullptr);
}

TEST(AddressSpace, AddressesNeverReused)
{
    AddressSpace space;
    const Addr a = space.mmap(kPageSize, 0, "r");
    space.munmap(a);
    const Addr b = space.mmap(kPageSize, 1, "r");
    EXPECT_NE(a, b);
}

TEST(AddressSpace, MbindUpdatesPolicy)
{
    AddressSpace space;
    const Addr a = space.mmap(kPageSize, 0, "r");
    space.mbind(a, MemPolicy::bind(MemNode::NVM));
    EXPECT_EQ(space.find(a)->policy.mode, MemPolicy::Mode::Bind);
    EXPECT_EQ(space.find(a)->policy.node, MemNode::NVM);
}

TEST(AddressSpace, HugeAlignmentPlacesVmasOnPmdBoundaries)
{
    AddressSpace space;
    space.setHugeAlignment(true);
    const Addr a = space.mmap(3 * kPageSize, 0, "a");
    const Addr b = space.mmap(kHugePageSize + kPageSize, 1, "b");
    EXPECT_EQ(a % kHugePageSize, 0u);
    EXPECT_EQ(b % kHugePageSize, 0u);
    EXPECT_GE(b, a + 3 * kPageSize + kPageSize);  // Guard page kept.
}

TEST(AddressSpace, DefaultLayoutUnchangedWithoutHugeAlignment)
{
    // Regression: the 4 KiB-only layout must stay exactly as it was
    // before THP existed — base address, page rounding, one guard page.
    AddressSpace space;
    EXPECT_FALSE(space.hugeAlignment());
    const Addr a = space.mmap(3 * kPageSize, 0, "a");
    const Addr b = space.mmap(100, 1, "b");
    EXPECT_EQ(a, 0x1'0000'0000ULL);
    EXPECT_EQ(b, a + 3 * kPageSize + kPageSize);
}

// ------------------------------------------------------------ MemPolicy

TEST(MemPolicy, SplitAssignsByPageIndex)
{
    const MemPolicy p = MemPolicy::split(3);
    EXPECT_EQ(p.nodeForPage(0), MemNode::DRAM);
    EXPECT_EQ(p.nodeForPage(2), MemNode::DRAM);
    EXPECT_EQ(p.nodeForPage(3), MemNode::NVM);
    EXPECT_TRUE(p.pinned());
}

TEST(MemPolicy, DefaultNotPinned)
{
    EXPECT_FALSE(MemPolicy{}.pinned());
    EXPECT_TRUE(MemPolicy::bind(MemNode::DRAM).pinned());
}

// ------------------------------------------------------------ PageTable

TEST(PageTable, InsertFindErase)
{
    PageTable pt;
    EXPECT_EQ(pt.find(5), nullptr);
    PageMeta &meta = pt.insert(5);
    meta.present = true;
    EXPECT_NE(pt.find(5), nullptr);
    EXPECT_TRUE(pt.find(5)->present);
    pt.erase(5);
    EXPECT_EQ(pt.find(5), nullptr);
    EXPECT_EQ(pt.size(), 0u);
}

// --------------------------------------------------- Kernel fault paths

TEST_F(KernelTest, FirstTouchAllocatesDram)
{
    const Addr a = kern.mmap(0, 8 * kPageSize, 0, "obj");
    const TouchResult r = kern.touchPage(pageOf(a), 10, MemOp::Load);
    EXPECT_TRUE(r.pageFault);
    EXPECT_EQ(r.node, MemNode::DRAM);
    EXPECT_EQ(kern.vmstat().pgfault, 1u);
    EXPECT_EQ(kern.nodeOf(pageOf(a)), MemNode::DRAM);
}

TEST_F(KernelTest, SecondTouchNoFault)
{
    const Addr a = kern.mmap(0, kPageSize, 0, "obj");
    kern.touchPage(pageOf(a), 10, MemOp::Load);
    const TouchResult r = kern.touchPage(pageOf(a), 20, MemOp::Load);
    EXPECT_FALSE(r.pageFault);
    EXPECT_EQ(r.cost, 0u);
    EXPECT_EQ(kern.vmstat().pgfault, 1u);
}

TEST_F(KernelTest, DramExhaustionFallsBackToNvm)
{
    // Finding 3: default policy is DRAM while space lasts, then NVM.
    const Addr a =
        kern.mmap(0, (kDramPages + 64) * kPageSize, 0, "big");
    touchRange(a, kDramPages + 64);
    const auto stat = kern.numastat();
    EXPECT_GT(stat.appPages[0], 0u);   // Some pages on DRAM.
    EXPECT_GT(stat.appPages[1], 0u);   // Overflow on NVM.
    // The first-touched pages are the DRAM ones.
    EXPECT_EQ(kern.nodeOf(pageOf(a)), MemNode::DRAM);
    EXPECT_EQ(kern.nodeOf(pageOf(a) + kDramPages + 63), MemNode::NVM);
}

TEST_F(KernelTest, BindNvmPolicyHonoured)
{
    const Addr a = kern.mmap(0, 4 * kPageSize, 0, "obj");
    kern.mbind(a, MemPolicy::bind(MemNode::NVM));
    touchRange(a, 4);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(kern.nodeOf(pageOf(a) + i), MemNode::NVM);
    EXPECT_TRUE(kern.pageMeta(pageOf(a))->pinned);
}

TEST_F(KernelTest, SplitPolicyStraddlesTiers)
{
    const Addr a = kern.mmap(0, 6 * kPageSize, 0, "obj");
    kern.mbind(a, MemPolicy::split(2));
    touchRange(a, 6);
    EXPECT_EQ(kern.nodeOf(pageOf(a) + 0), MemNode::DRAM);
    EXPECT_EQ(kern.nodeOf(pageOf(a) + 1), MemNode::DRAM);
    for (std::uint64_t i = 2; i < 6; ++i)
        EXPECT_EQ(kern.nodeOf(pageOf(a) + i), MemNode::NVM);
}

TEST_F(KernelTest, MunmapFreesFramesAndShootsDown)
{
    const Addr a = kern.mmap(0, 4 * kPageSize, 0, "obj");
    touchRange(a, 4);
    const auto before = kern.numastat();
    EXPECT_EQ(before.appPages[0], 4u);
    shootdown.count = 0;
    kern.munmap(100, a);
    const auto after = kern.numastat();
    EXPECT_EQ(after.appPages[0], 0u);
    EXPECT_EQ(shootdown.count, 4u);
    EXPECT_EQ(kern.pageMeta(pageOf(a)), nullptr);
}

// ------------------------------------------------- Hint faults/tiering

/** Policy that records hint faults and optionally promotes. */
class RecordingPolicy : public TieringPolicy
{
  public:
    explicit RecordingPolicy(Kernel &k) : kern(k) {}

    const char *name() const override { return "recording"; }

    Cycles
    onHintFault(PageNum vpn, Cycles now, PageMeta &meta) override
    {
        ++faults;
        lastLatency = now - meta.scanTime;
        if (promote && meta.node == MemNode::NVM)
            return kern.promotePage(vpn, now);
        return 0;
    }

    Kernel &kern;
    std::uint64_t faults = 0;
    Cycles lastLatency = 0;
    bool promote = false;
};

TEST_F(KernelTest, HintFaultLatencyFromScanTime)
{
    RecordingPolicy policy(kern);
    kern.setTieringPolicy(&policy);
    const Addr a = kern.mmap(0, kPageSize, 0, "obj");
    kern.touchPage(pageOf(a), 100, MemOp::Load);

    PageMeta *meta = kern.pageMetaMutable(pageOf(a));
    meta->protNone = true;
    meta->scanTime = 500;

    const TouchResult r = kern.touchPage(pageOf(a), 1300, MemOp::Load);
    EXPECT_TRUE(r.hintFault);
    EXPECT_EQ(policy.faults, 1u);
    EXPECT_EQ(policy.lastLatency, 800u);
    EXPECT_FALSE(kern.pageMeta(pageOf(a))->protNone);
    EXPECT_EQ(kern.vmstat().numaHintFaults, 1u);
}

TEST_F(KernelTest, PromotionMovesPageAndCounts)
{
    RecordingPolicy policy(kern);
    policy.promote = true;
    kern.setTieringPolicy(&policy);

    const Addr a = kern.mmap(0, kPageSize, 0, "obj");
    kern.mbind(a, MemPolicy::bind(MemNode::NVM));
    // mbind pins; unpin manually to allow promotion (test shortcut to
    // get a page onto NVM).
    kern.touchPage(pageOf(a), 10, MemOp::Load);
    PageMeta *meta = kern.pageMetaMutable(pageOf(a));
    meta->pinned = false;
    meta->protNone = true;
    meta->scanTime = 5;

    kern.touchPage(pageOf(a), 50, MemOp::Load);
    EXPECT_EQ(kern.nodeOf(pageOf(a)), MemNode::DRAM);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 1u);
    EXPECT_EQ(kern.vmstat().pgmigrateSuccess, 1u);
    EXPECT_TRUE(kern.pageMeta(pageOf(a))->promoted);
}

TEST_F(KernelTest, PromotePinnedPageRefused)
{
    const Addr a = kern.mmap(0, kPageSize, 0, "obj");
    kern.mbind(a, MemPolicy::bind(MemNode::NVM));
    kern.touchPage(pageOf(a), 10, MemOp::Load);
    EXPECT_EQ(kern.promotePage(pageOf(a), 20), 0u);
    EXPECT_EQ(kern.vmstat().pgpromoteSuccess, 0u);
}

// --------------------------------------------------- Reclaim / demotion

TEST_F(KernelTest, KswapdDemotesColdPagesBelowLowWatermark)
{
    const Addr a = kern.mmap(0, kDramPages * kPageSize, 0, "big");
    touchRange(a, kDramPages - 2);  // Nearly fill DRAM.
    const auto before = kern.numastat();
    ASSERT_LT(before.freePages[0], kern.params().lowWatermarkFrac *
                                       kDramPages * 4);  // Sanity.
    kern.kswapdTick(secondsToCycles(1.0));
    const VmStat &vm = kern.vmstat();
    EXPECT_GT(vm.pgdemoteKswapd, 0u);
    EXPECT_EQ(vm.pgdemoteDirect, 0u);
    const auto after = kern.numastat();
    EXPECT_GT(after.freePages[0], before.freePages[0]);
    EXPECT_GT(after.appPages[1], 0u);
}

TEST_F(KernelTest, KswapdIdleAboveWatermark)
{
    const Addr a = kern.mmap(0, 4 * kPageSize, 0, "small");
    touchRange(a, 4);
    kern.kswapdTick(1000);
    EXPECT_EQ(kern.vmstat().pgdemoteKswapd, 0u);
}

TEST_F(KernelTest, DemotedPagesKeepContentsMapping)
{
    const Addr a = kern.mmap(0, kDramPages * kPageSize, 0, "big");
    touchRange(a, kDramPages - 2);
    kern.kswapdTick(secondsToCycles(1.0));
    // Every page still mapped, just possibly on the other tier.
    for (std::uint64_t i = 0; i < kDramPages - 2; ++i) {
        const PageMeta *meta = kern.pageMeta(pageOf(a) + i);
        ASSERT_NE(meta, nullptr);
        EXPECT_TRUE(meta->present);
    }
}

TEST_F(KernelTest, PromoteThenDemoteCountsThrashing)
{
    RecordingPolicy policy(kern);
    kern.setTieringPolicy(&policy);

    const Addr a = kern.mmap(0, kPageSize, 0, "obj");
    kern.mbind(a, MemPolicy::bind(MemNode::NVM));
    kern.touchPage(pageOf(a), 10, MemOp::Load);
    PageMeta *meta = kern.pageMetaMutable(pageOf(a));
    meta->pinned = false;
    ASSERT_GT(kern.promotePage(pageOf(a), 20), 0u);

    // Force demotion of exactly this (now cold) page via kswapd by
    // filling DRAM.
    const Addr big = kern.mmap(0, kDramPages * kPageSize, 1, "big");
    touchRange(big, kDramPages - 2, 30);
    kern.kswapdTick(secondsToCycles(1.0));
    EXPECT_GT(kern.vmstat().pgpromoteDemoted, 0u);
}

// ----------------------------------------------------------- Page cache

TEST_F(KernelTest, PageCacheFetchOnceThenCached)
{
    const Addr f = kern.registerFile(8 * kPageSize, "input.sg");
    const Cycles first = kern.ensureCached(pageOf(f), 100);
    EXPECT_GT(first, 0u);
    const Cycles second = kern.ensureCached(pageOf(f), 200);
    EXPECT_EQ(second, 0u);
    EXPECT_EQ(kern.numastat().cachePages[0], 1u);
    // Page-cache population is not a user minor fault.
    EXPECT_EQ(kern.vmstat().pgfault, 0u);
}

TEST_F(KernelTest, PageCacheDemotedUnderPressure)
{
    // Finding 5: reclaim demotes page cache to free DRAM.
    const Addr f =
        kern.registerFile((kDramPages - 8) * kPageSize, "input.sg");
    for (std::uint64_t i = 0; i < kDramPages - 8; ++i)
        kern.ensureCached(pageOf(f) + i, 100 + i);
    ASSERT_GT(kern.numastat().cachePages[0], 0u);
    kern.kswapdTick(secondsToCycles(1.0));
    EXPECT_GT(kern.vmstat().pgdemoteKswapd, 0u);
    EXPECT_GT(kern.numastat().cachePages[1], 0u);  // Demoted to NVM.
}

TEST_F(KernelTest, DefaultPolicyKeepsMinWatermarkReserve)
{
    // Default (unbound) allocations stop taking DRAM at the min
    // watermark and fall back to NVM instead of draining it to zero.
    const Addr f =
        kern.registerFile(kDramPages * kPageSize, "input.sg");
    for (std::uint64_t i = 0; i < kDramPages; ++i)
        kern.ensureCached(pageOf(f) + i, 100 + i);
    EXPECT_GT(kern.numastat().freePages[0], 0u);
    EXPECT_LE(kern.numastat().freePages[0], 16u);
    EXPECT_GT(kern.numastat().cachePages[1], 0u);  // Spillover on NVM.
}

TEST_F(KernelTest, DirectReclaimForPinnedDramAllocation)
{
    // Fill DRAM with unpinned pages (down to the watermark reserve),
    // then demand more DRAM-bound pages than remain free: the bound
    // allocation cannot fall back, so it direct-reclaims (demotes).
    const Addr filler = kern.mmap(0, kDramPages * kPageSize, 0, "fill");
    touchRange(filler, kDramPages);
    const std::uint64_t free_before = kern.numastat().freePages[0];
    ASSERT_LE(free_before, 16u);

    const std::uint64_t want = free_before + 8;
    const Addr a = kern.mmap(0, want * kPageSize, 1, "hot");
    kern.mbind(a, MemPolicy::bind(MemNode::DRAM));
    for (std::uint64_t i = 0; i < want; ++i) {
        const TouchResult r = kern.touchPage(
            pageOf(a) + i, secondsToCycles(1.0) + i, MemOp::Store);
        EXPECT_EQ(r.node, MemNode::DRAM);
    }
    EXPECT_GT(kern.vmstat().pgdemoteDirect, 0u);
}

// ------------------------------------------- Vanilla kernel (no tiering)

TEST(KernelNoTiering, ReclaimDropsCleanCacheOnly)
{
    PhysicalMemory phys(makeDramParams(64 * kPageSize),
                        makeNvmParams(256 * kPageSize));
    KernelParams kp;
    kp.demoteOnReclaim = false;
    Kernel kern(phys, kp);
    RecordingShootdown sd;
    kern.setShootdownClient(&sd);

    const Addr f = kern.registerFile(60 * kPageSize, "input.sg");
    for (std::uint64_t i = 0; i < 60; ++i)
        kern.ensureCached(pageOf(f) + i, 100 + i);
    kern.kswapdTick(secondsToCycles(1.0));
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.pgdemoteKswapd, 0u);
    EXPECT_EQ(vm.pgmigrateSuccess, 0u);
    EXPECT_GT(vm.pageCacheDrops, 0u);
}

TEST(KernelNoTiering, AppPagesNeverMigrate)
{
    // The paper's counter check: with AutoNUMA disabled all migration
    // counters stay at zero delta (Section 6.6).
    PhysicalMemory phys(makeDramParams(64 * kPageSize),
                        makeNvmParams(256 * kPageSize));
    KernelParams kp;
    kp.demoteOnReclaim = false;
    Kernel kern(phys, kp);
    RecordingShootdown sd;
    kern.setShootdownClient(&sd);

    const Addr a = kern.mmap(0, 80 * kPageSize, 0, "big");
    for (std::uint64_t i = 0; i < 80; ++i)
        kern.touchPage(pageOf(a) + i, 100 + i, MemOp::Store);
    for (int tick = 0; tick < 10; ++tick)
        kern.kswapdTick(secondsToCycles(0.1 * (tick + 1)));
    const VmStat &vm = kern.vmstat();
    EXPECT_EQ(vm.pgpromoteSuccess, 0u);
    EXPECT_EQ(vm.pgdemoteKswapd, 0u);
    EXPECT_EQ(vm.pgdemoteDirect, 0u);
    EXPECT_EQ(vm.pgmigrateSuccess, 0u);
}

// ---------------------------------------------------------------- misc

TEST_F(KernelTest, VmStatDelta)
{
    const Addr a = kern.mmap(0, 4 * kPageSize, 0, "obj");
    touchRange(a, 2);
    const VmStat snap = kern.vmstat();
    touchRange(a + 2 * kPageSize, 2);
    const VmStat d = kern.vmstat().delta(snap);
    EXPECT_EQ(d.pgfault, 2u);
}

TEST(VmStat, DeltaCoversEveryField)
{
    // Catches a counter added to VmStat but forgotten in delta(): a
    // snapshot with every byte set, minus an all-zero snapshot, must
    // reproduce itself exactly. A skipped field comes back zeroed and
    // fails the byte comparison.
    VmStat full;
    static_assert(std::is_trivially_copyable_v<VmStat>);
    std::memset(static_cast<void *>(&full), 0x5A, sizeof(VmStat));
    const VmStat zero{};
    const VmStat d = full.delta(zero);
    EXPECT_EQ(std::memcmp(&d, &full, sizeof(VmStat)), 0);
}

TEST_F(KernelTest, NumastatTracksFree)
{
    const auto s0 = kern.numastat();
    EXPECT_EQ(s0.freePages[0], kDramPages);
    EXPECT_EQ(s0.freePages[1], kNvmPages);
    const Addr a = kern.mmap(0, 3 * kPageSize, 0, "obj");
    touchRange(a, 3);
    EXPECT_EQ(kern.numastat().freePages[0], kDramPages - 3);
}

TEST_F(KernelTest, DramHasFreeCapacityFlag)
{
    EXPECT_TRUE(kern.dramHasFreeCapacity());
    const Addr a = kern.mmap(0, kDramPages * kPageSize, 0, "big");
    touchRange(a, kDramPages - 4);
    EXPECT_FALSE(kern.dramHasFreeCapacity());
}

}  // namespace
}  // namespace memtier

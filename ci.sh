#!/bin/bash
# Continuous-integration gate, meant to be run from the repository root:
#
#   1. tier-1 verify: warnings-as-errors build + the full test suite;
#   2. an ASan/UBSan build of the test suite, to catch memory and UB
#      bugs the functional tests would miss.
#
# Both builds live in their own build directories so they never disturb
# an existing developer build/.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/2] tier-1: RelWithDebInfo -Werror build + ctest ==="
cmake -B build-ci -S . -DMEMTIER_WERROR=ON
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [2/2] sanitizers: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DMEMTIER_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "ci.sh: all gates passed"

#!/bin/bash
# Continuous-integration gate, meant to be run from the repository root:
#
#   1. tier-1 verify: warnings-as-errors build + the full test suite;
#   2. an ASan/UBSan build of the test suite, to catch memory and UB
#      bugs the functional tests would miss;
#   3. a chaos pass: the tier-1 binaries re-run with the kernel
#      invariant checker forced on and a moderate fault-injection plan
#      pushed into the chaos-aware tests.
#
# All builds live in their own build directories so they never disturb
# an existing developer build/.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/3] tier-1: RelWithDebInfo -Werror build + ctest ==="
cmake -B build-ci -S . -DMEMTIER_WERROR=ON
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [2/3] sanitizers: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DMEMTIER_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/3] chaos: invariant checker on + fault plan, tier-1 binaries ==="
# MEMTIER_CHECK_INVARIANTS=ON arms the kernel invariant checker in
# every Engine (observer-only: results stay bit-identical), and
# MEMTIER_FAULT_PLAN overrides the chaos-aware tests' default plan.
MEMTIER_CHECK_INVARIANTS=ON \
MEMTIER_FAULT_PLAN="migrate:p=0.1,burst=6;alloc:p=0.03;seed=97" \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "ci.sh: all gates passed"

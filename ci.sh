#!/bin/bash
# Continuous-integration gate, meant to be run from the repository root:
#
#   1. tier-1 verify: warnings-as-errors build + the full test suite;
#   2. an ASan/UBSan build of the test suite, to catch memory and UB
#      bugs the functional tests would miss;
#   3. a serving smoke pass: a short data-serving tail sweep (KV + LSM,
#      two policies) run under the ASan/UBSan build, so the open-loop
#      driver, the stores and the latency histograms get a sanitizer
#      pass on every change;
#   4. a chaos pass: the tier-1 binaries re-run with the kernel
#      invariant checker forced on and a moderate fault-injection plan
#      pushed into the chaos-aware tests, plus a segmented-CSR smoke
#      cell (PageRank on the out-of-core path at 4 segments) under the
#      invariant checker;
#   5. a THP pass: the tier-1 binaries re-run with transparent huge
#      pages forced on (MEMTIER_THP=ON) under the invariant checker, so
#      every run exercises PMD mappings, collapse and splits. Tests
#      whose golden values need the 4 KiB-only baseline skip
#      themselves;
#   6. a scalar-path pass: the tier-1 binaries re-run with
#      MEMTIER_SCALAR_PATH=ON, forcing the element-at-a-time reference
#      pipeline. The hotpath golden tests pin both paths to the same
#      captured observables, so this pass plus pass 1 is a full
#      scalar-vs-batched diff of every golden workload;
#   7. a perf-regression gate: bench/hotpath_speed re-run at its
#      committed parameters and compared against the checked-in
#      BENCH_hotpath.json (fails when batched throughput drops below
#      80% of the recorded baseline), then bench/parallel_scaling
#      against BENCH_parallel.json: the copy engine must keep >= 2x
#      migration bandwidth at 4 workers (simulated, machine-
#      independent), and on runners with >= 4 cores the 4-host-thread
#      throughput must stay >= 80% of the committed baseline and
#      >= 1.5x the same run's 1-thread figure; then bench/scale_sweep
#      against BENCH_scale.json: the one-segment out-of-core build
#      must stay bit-identical to the monolithic loader and the
#      largest committed scale cell must keep >= 80% of its recorded
#      accesses/sec;
#   8. an ECC chaos pass: the memory-failure end-to-end tests (BFS
#      under an ecc_ce/ecc_ue plan) and one hot cell of the KV
#      degradation sweep, both with the invariant checker forced on,
#      asserting that frames actually retired and requests were
#      actually killed (nonzero hwpoison_* counters) while every
#      poisoned-frame invariant held;
#   9. a TSan matrix: a ThreadSanitizer build running the threaded
#      tests (host executor park/round protocol, copy engine), one
#      short PageRank cell at 4 host threads and one KV serving cell
#      at MEMTIER_HOST_THREADS=4, plus a determinism cell replaying
#      the same seed twice at 4 host threads and diffing every
#      simulated observable;
#  10. an autotune pass: a short tuned PageRank + KV cell under the
#      invariant checker asserting the online tuner actually moved at
#      least one tunable, then a perf gate on the committed
#      BENCH_autotune.json: tuned autonuma must be >= 1.0x the default
#      configuration on every committed cell and keep a >5% win on at
#      least one.
#
# All builds live in their own build directories so they never disturb
# an existing developer build/.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/10] tier-1: RelWithDebInfo -Werror build + ctest ==="
cmake -B build-ci -S . -DMEMTIER_WERROR=ON
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [2/10] sanitizers: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DMEMTIER_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/10] serving smoke: short tail sweep under ASan/UBSan ==="
# One trial, two policies, THP off: small enough to stay fast under
# the sanitizers, big enough to drive the generator, both stores, the
# LSM flush/compaction path and the phase histograms end to end.
./build-asan/bench/serving_tail --trials=1 \
    --policies=autonuma,dram-only --no-thp \
    --out=build-asan/BENCH_serving_smoke.json \
    --csv=build-asan/serving_smoke.csv

echo "=== [4/10] chaos: invariant checker on + fault plan, tier-1 binaries ==="
# MEMTIER_CHECK_INVARIANTS=ON arms the kernel invariant checker in
# every Engine (observer-only: results stay bit-identical), and
# MEMTIER_FAULT_PLAN overrides the chaos-aware tests' default plan.
MEMTIER_CHECK_INVARIANTS=ON \
MEMTIER_FAULT_PLAN="migrate:p=0.1,burst=6;alloc:p=0.03;seed=97" \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"
# Segmented-CSR smoke: one short PageRank on the out-of-core segmented
# path with the invariant checker armed (bigraph_test covers faults on
# this path; this covers the sweep driver end to end).
MEMTIER_CHECK_INVARIANTS=ON \
    ./build-ci/bench/scale_sweep --rows=16:kron:autonuma:4 --trials=2 \
    --no-check --out=build-ci/BENCH_scale_smoke.json > /dev/null
python3 - build-ci/BENCH_scale_smoke.json <<'EOF'
import json, sys
row = json.load(open(sys.argv[1]))["rows"][0]
if row["pgpromote"] == 0:
    sys.exit("scale smoke FAILED: AutoNUMA promoted nothing on the "
             "segmented path")
if not 0.0 < row["dram_hit_fraction"] <= 1.0:
    sys.exit(f"scale smoke FAILED: dram_hit_fraction "
             f"{row['dram_hit_fraction']} out of range")
print(f"scale smoke: {row['pgpromote']} promotions, dram_hit "
      f"{row['dram_hit_fraction']:.3f} under the invariant checker")
EOF

echo "=== [5/10] thp: MEMTIER_THP=ON + invariant checker, tier-1 binaries ==="
# MEMTIER_THP=ON force-enables the THP model in every Engine; the
# extended invariant sweep (PMD/PTE consistency, THP counter identity)
# runs continuously. Golden-value tests captured with THP off skip.
MEMTIER_THP=ON \
MEMTIER_CHECK_INVARIANTS=ON \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [6/10] scalar path: MEMTIER_SCALAR_PATH=ON, tier-1 binaries ==="
# MEMTIER_SCALAR_PATH=ON forces the element-at-a-time reference path in
# every Engine. The hotpath golden tests assert exact captured
# observables in both modes, so any scalar-vs-batched divergence fails
# here or in pass 1.
MEMTIER_SCALAR_PATH=ON \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [7/10] perf gate: hotpath throughput vs committed baseline ==="
# Re-measure the batched hot path at the baseline's parameters and
# fail on a >20% throughput regression. The bench itself also fails
# when the scalar and batched paths stop being bit-identical, so this
# gate checks correctness and speed in one run.
./build-ci/bench/hotpath_speed --out=build-ci/BENCH_hotpath_ci.json \
    > /dev/null
python3 - BENCH_hotpath.json build-ci/BENCH_hotpath_ci.json <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))["batched_accesses_per_sec"]
now = json.load(open(sys.argv[2]))["batched_accesses_per_sec"]
ratio = now / base
print(f"perf gate: baseline {base:.3e} acc/s, now {now:.3e} acc/s "
      f"({ratio:.2f}x)")
if ratio < 0.8:
    sys.exit("perf gate FAILED: batched hot path regressed >20% "
             "vs BENCH_hotpath.json (refresh the baseline via "
             "run_benches.sh if the change is intentional)")
EOF
# Host-thread / copy-worker scaling against the committed baseline.
# The migration-bandwidth axis is simulated (a pure function of the
# worker count), so it gates on every machine; the wall-clock axes
# only gate on runners with >= 4 cores, where scaling is physical.
./build-ci/bench/parallel_scaling \
    --out=build-ci/BENCH_parallel_ci.json > /dev/null
python3 - BENCH_parallel.json build-ci/BENCH_parallel_ci.json <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))
now = json.load(open(sys.argv[2]))
def at(rec, n):
    for row in rec["per_threads"]:
        if row["threads"] == n:
            return row
    sys.exit(f"parallel gate FAILED: no {n}-thread row in record")
if not now.get("checksum_ok", False):
    sys.exit("parallel gate FAILED: application checksum changed "
             "with the host thread count")
mig = at(now, 4)["migration_speedup"]
print(f"parallel gate: migration bandwidth at 4 copy workers "
      f"{mig:.2f}x the 1-worker figure")
if mig < 2.0:
    sys.exit("parallel gate FAILED: migration bandwidth at 4 copy "
             "workers fell below 2x the 1-worker figure")
cores = int(now.get("host_cores", 0))
if cores >= 4:
    n1, n4 = at(now, 1), at(now, 4)
    vs_base = n4["accesses_per_sec"] / at(base, 4)["accesses_per_sec"]
    vs_self = n4["accesses_per_sec"] / n1["accesses_per_sec"]
    print(f"parallel gate: 4-thread throughput {vs_base:.2f}x of the "
          f"committed baseline, {vs_self:.2f}x of this run's 1-thread")
    if vs_base < 0.8:
        sys.exit("parallel gate FAILED: 4-thread throughput regressed "
                 ">20% vs BENCH_parallel.json (refresh the baseline "
                 "via run_benches.sh if the change is intentional)")
    if vs_self < 1.5:
        sys.exit("parallel gate FAILED: 4-thread throughput below "
                 "1.5x the 1-thread figure")
else:
    print(f"parallel gate: wall-clock thresholds skipped "
          f"(runner has {cores} core(s), need 4)")
EOF
# Footprint-scale gate: re-run the largest committed cell of the
# segmented-CSR sweep (the run starts with the segment-1 bit-identity
# golden check, so a divergent out-of-core build fails here before any
# throughput comparison) and fail on a >20% accesses/sec regression.
python3 - BENCH_scale.json <<'EOF' > build-ci/scale_gate_row
import json, sys
rec = json.load(open(sys.argv[1]))
r = max(rec["rows"], key=lambda row: row["scale"])
print(f"{r['scale']}:{r['kind']}:{r['mode']}:{r['segments']}")
EOF
./build-ci/bench/scale_sweep --rows="$(cat build-ci/scale_gate_row)" \
    --out=build-ci/BENCH_scale_ci.json > /dev/null
python3 - BENCH_scale.json build-ci/BENCH_scale_ci.json <<'EOF'
import json, sys
base_rec = json.load(open(sys.argv[1]))
now_rec = json.load(open(sys.argv[2]))
if not now_rec.get("segment1_bit_identical", False):
    sys.exit("scale gate FAILED: the one-segment out-of-core build is "
             "no longer bit-identical to the monolithic loader")
base = max(base_rec["rows"], key=lambda r: r["scale"])
now = now_rec["rows"][0]
ratio = now["accesses_per_sec"] / base["accesses_per_sec"]
print(f"scale gate: scale {base['scale']} {base['kind']} "
      f"[{base['mode']}] baseline {base['accesses_per_sec']:.3e} "
      f"acc/s, now {now['accesses_per_sec']:.3e} acc/s ({ratio:.2f}x)")
if ratio < 0.8:
    sys.exit("scale gate FAILED: segmented-path throughput regressed "
             ">20% vs BENCH_scale.json at the largest committed scale "
             "(refresh the baseline via run_benches.sh if the change "
             "is intentional)")
EOF

echo "=== [8/10] ecc chaos: memory failures under the invariant checker ==="
# The BFS side: the memory-failure end-to-end tests replay an
# ecc_ce/ecc_ue plan twice and assert bit-identity plus nonzero
# hwpoison counters; forcing the checker on makes every other test in
# the filter sweep the poisoned-frame invariants too.
MEMTIER_CHECK_INVARIANTS=ON \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS" \
    -R "FaultEndToEnd|FaultKernel|FaultThp"
# The KV side: one hot cell of the degradation sweep (CE probability
# 0.25, UE riding along at 1/32) under the checker, then assert from
# the CSV that the run actually eroded DRAM and killed requests.
MEMTIER_CHECK_INVARIANTS=ON \
    ./build-ci/bench/degradation_sweep --policies=autonuma \
    --levels=0.25 --trials=1 \
    --out=build-ci/BENCH_degradation_ci.json \
    --csv=build-ci/degradation_ci.csv > /dev/null
python3 - build-ci/degradation_ci.csv <<'EOF'
import csv, sys
rows = {float(r["ce_prob"]): r for r in csv.DictReader(open(sys.argv[1]))}
base, hot = rows[0.0], rows[0.25]
for key in ("frames_retired", "soft_offline", "sigbus", "errors"):
    if int(base[key]) != 0:
        sys.exit(f"ecc gate FAILED: healthy baseline has {key}="
                 f"{base[key]} (must be 0)")
    if int(hot[key]) == 0:
        sys.exit(f"ecc gate FAILED: hot cell has {key}=0 "
                 "(the ECC plan injected nothing)")
if float(hot["availability"]) >= 1.0:
    sys.exit("ecc gate FAILED: hot cell reports full availability "
             "despite SIGBUS kills")
print(f"ecc gate: {hot['frames_retired']} frames retired, "
      f"{hot['sigbus']} SIGBUS kills, availability "
      f"{float(hot['availability']):.4f} (baseline clean)")
EOF

echo "=== [9/10] tsan matrix: ThreadSanitizer build + threaded cells ==="
# The host executor shares the engine with real std::threads; TSan
# verifies the park/round protocol's happens-before edges for real.
cmake -B build-tsan -S . -DMEMTIER_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g"
cmake --build build-tsan -j "$JOBS" --target \
    hostexec_test mem_test parallel_scaling serving_tail policy_sweep
# Threaded tests: the executor protocol end to end, plus the copy
# engine's scheduling unit tests.
./build-tsan/tests/hostexec_test
./build-tsan/tests/mem_test --gtest_filter='CopyEngine*'
# One short PageRank cell at 4 host threads (the bench sets the thread
# count per run, so no env var here: it would pin every run to 4).
./build-tsan/bench/parallel_scaling \
    --scale=10 --trials=2 --reps=1 --threads=1,4 \
    --out=build-tsan/BENCH_parallel_tsan.json > /dev/null
# One KV serving cell with the engine at 4 host threads.
MEMTIER_HOST_THREADS=4 ./build-tsan/bench/serving_tail --trials=1 \
    --policies=autonuma --no-thp \
    --out=build-tsan/BENCH_serving_tsan.json \
    --csv=build-tsan/serving_tsan.csv > /dev/null
# Determinism cell: the same seed twice at 4 host threads. The sweep
# CSV holds only simulated observables (vmstat counters, simulated
# seconds), so the two files must be byte-identical.
MEMTIER_HOST_THREADS=4 ./build-tsan/bench/policy_sweep \
    --policy=autonuma --tunable scan_period_ms=0.5 --workload pr:kron \
    --out=build-tsan/determinism_a.csv > /dev/null
MEMTIER_HOST_THREADS=4 ./build-tsan/bench/policy_sweep \
    --policy=autonuma --tunable scan_period_ms=0.5 --workload pr:kron \
    --out=build-tsan/determinism_b.csv > /dev/null
if ! diff build-tsan/determinism_a.csv build-tsan/determinism_b.csv; then
    echo "ci.sh: determinism cell FAILED -- the same seed at 4 host" >&2
    echo "  threads produced different simulated observables" >&2
    exit 1
fi
echo "tsan matrix: determinism cell identical"

echo "=== [10/10] autotune: tuner smoke + tuned-vs-default perf gate ==="
# Smoke: one graph cell and one serving cell under the invariant
# checker. The run itself proves tuning keeps every kernel invariant;
# the assertion below proves the tuner actually moved something (an
# observe-only tuner would trivially "pass" any perf comparison).
MEMTIER_CHECK_INVARIANTS=ON \
    ./build-ci/bench/autotune_sweep --trials=2 --epoch-ms=0.2 \
    --workload pr:kron --workload kv:kron \
    --out=build-ci/BENCH_autotune_smoke.json \
    --csv=build-ci/autotune_smoke.csv > /dev/null
python3 - build-ci/BENCH_autotune_smoke.json <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
for c in cells:
    if c["tuner_applied"] < 1:
        sys.exit(f"autotune smoke FAILED: tuner moved no tunable on "
                 f"{c['workload']} (epochs={c['tuner_epochs']})")
print("autotune smoke: " +
      ", ".join(f"{c['workload']} applied {c['tuner_applied']} "
                f"(accepted {c['tuner_accepted']})" for c in cells) +
      " under the invariant checker")
EOF
# Perf gate on the committed record: the bench is fully deterministic
# (seeded tuner, cycle clock), so the committed cells are exactly
# reproducible via run_benches.sh. Online tuning must never lose to
# the static default, and must keep a real win somewhere.
python3 - BENCH_autotune.json <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
if len(cells) < 3:
    sys.exit("autotune gate FAILED: fewer than 3 committed cells")
worst = min(cells, key=lambda c: c["speedup"])
best = max(cells, key=lambda c: c["speedup"])
for c in cells:
    print(f"autotune gate: {c['workload']} tuned/default "
          f"{c['speedup']:.3f}x")
if worst["speedup"] < 1.0:
    sys.exit(f"autotune gate FAILED: tuned autonuma lost to the "
             f"default on {worst['workload']} "
             f"({worst['speedup']:.3f}x; refresh the baseline via "
             f"run_benches.sh if the change is intentional)")
if best["speedup"] <= 1.05:
    sys.exit(f"autotune gate FAILED: best committed win is only "
             f"{best['speedup']:.3f}x (need >1.05x on at least one "
             f"cell)")
EOF

echo "ci.sh: all gates passed"

#!/bin/bash
# Continuous-integration gate, meant to be run from the repository root:
#
#   1. tier-1 verify: warnings-as-errors build + the full test suite;
#   2. an ASan/UBSan build of the test suite, to catch memory and UB
#      bugs the functional tests would miss;
#   3. a chaos pass: the tier-1 binaries re-run with the kernel
#      invariant checker forced on and a moderate fault-injection plan
#      pushed into the chaos-aware tests;
#   4. a THP pass: the tier-1 binaries re-run with transparent huge
#      pages forced on (MEMTIER_THP=ON) under the invariant checker, so
#      every run exercises PMD mappings, collapse and splits. Tests
#      whose golden values need the 4 KiB-only baseline skip
#      themselves;
#   5. a scalar-path pass: the tier-1 binaries re-run with
#      MEMTIER_SCALAR_PATH=ON, forcing the element-at-a-time reference
#      pipeline. The hotpath golden tests pin both paths to the same
#      captured observables, so this pass plus pass 1 is a full
#      scalar-vs-batched diff of every golden workload.
#
# All builds live in their own build directories so they never disturb
# an existing developer build/.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/5] tier-1: RelWithDebInfo -Werror build + ctest ==="
cmake -B build-ci -S . -DMEMTIER_WERROR=ON
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [2/5] sanitizers: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DMEMTIER_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/5] chaos: invariant checker on + fault plan, tier-1 binaries ==="
# MEMTIER_CHECK_INVARIANTS=ON arms the kernel invariant checker in
# every Engine (observer-only: results stay bit-identical), and
# MEMTIER_FAULT_PLAN overrides the chaos-aware tests' default plan.
MEMTIER_CHECK_INVARIANTS=ON \
MEMTIER_FAULT_PLAN="migrate:p=0.1,burst=6;alloc:p=0.03;seed=97" \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [4/4] thp: MEMTIER_THP=ON + invariant checker, tier-1 binaries ==="
# MEMTIER_THP=ON force-enables the THP model in every Engine; the
# extended invariant sweep (PMD/PTE consistency, THP counter identity)
# runs continuously. Golden-value tests captured with THP off skip.
MEMTIER_THP=ON \
MEMTIER_CHECK_INVARIANTS=ON \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== [5/5] scalar path: MEMTIER_SCALAR_PATH=ON, tier-1 binaries ==="
# MEMTIER_SCALAR_PATH=ON forces the element-at-a-time reference path in
# every Engine. The hotpath golden tests assert exact captured
# observables in both modes, so any scalar-vs-batched divergence fails
# here or in pass 1.
MEMTIER_SCALAR_PATH=ON \
    ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "ci.sh: all gates passed"

#!/bin/bash
# Runs every bench binary in order, printing each one's report.
# Fails fast when the build is missing or older than the sources, so a
# stale build cannot masquerade as fresh results.
set -u
cd "$(dirname "$0")"

if [ ! -d build/bench ]; then
    echo "run_benches.sh: no build/bench directory." >&2
    echo "  Build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

binaries=$(find build/bench -maxdepth 1 -type f -perm -u+x | sort)
if [ -z "$binaries" ]; then
    echo "run_benches.sh: build/bench contains no executables." >&2
    echo "  Build first:  cmake --build build -j" >&2
    exit 1
fi

# Stale check: any source/bench/CMake file newer than the oldest binary
# means the build no longer reflects the tree.
stale_against=$(ls -t $binaries | tail -1)
newer=$(find src bench CMakeLists.txt -name '*.cc' -o -name '*.h' \
            -o -name 'CMakeLists.txt' 2>/dev/null \
        | xargs -r ls -t 2>/dev/null \
        | head -1)
if [ -n "$newer" ] && [ "$newer" -nt "$stale_against" ]; then
    echo "run_benches.sh: build is stale ($newer is newer than" >&2
    echo "  $stale_against). Rebuild:  cmake --build build -j" >&2
    exit 1
fi

mkdir -p results

for b in $binaries; do
    name=$(basename "$b")
    echo "=== $name ==="
    if [ "$name" = "micro_tier_latency" ]; then
        "$b" --benchmark_min_time=0.1 2>/dev/null
    elif [ "$name" = "hotpath_speed" ]; then
        # Hot-path throughput: forced-scalar vs batched pipeline on the
        # PageRank sweep. Writes the machine-readable record future PRs
        # compare against; the binary itself fails when the two paths
        # stop being bit-identical.
        "$b" --out=BENCH_hotpath.json 2>/dev/null
    elif [ "$name" = "parallel_scaling" ]; then
        # Host-thread and copy-worker scaling: wall-clock accesses/sec
        # at 1/2/4/8 host threads plus the copy engine's deterministic
        # migration bandwidth. Writes the record the CI perf gate
        # compares against; the binary fails when the application
        # checksum changes with the thread count.
        "$b" --out=BENCH_parallel.json 2>/dev/null
    elif [ "$name" = "scale_sweep" ]; then
        # Footprint-vs-scale on the segmented CSR path: out-of-core
        # builds from the default scale 18 up to multi-GB footprints
        # (kron 24, urand 25). Writes the record the CI scale gate
        # compares against; the binary fails when the one-segment build
        # stops being bit-identical to the monolithic loader.
        "$b" --out=BENCH_scale.json 2>/dev/null
    elif [ "$name" = "serving_tail" ]; then
        # Data-serving tail latency: KV + LSM under the registry
        # policies, THP off and on. Writes the machine-readable record
        # make_experiments_md.py renders into EXPERIMENTS.md.
        "$b" --out=BENCH_serving.json --csv=results/serving_tail.csv \
            2>/dev/null
    elif [ "$name" = "autotune_sweep" ]; then
        # Online tuning vs. the static default: tuned autonuma against
        # the same mistuned starting configuration on graph + serving
        # workloads. Writes the record the CI autotune gate compares
        # against; fully deterministic (seeded tuner, cycle clock).
        "$b" --out=BENCH_autotune.json \
            --csv=results/autotune_sweep.csv 2>/dev/null
    elif [ "$name" = "degradation_sweep" ]; then
        # Graceful degradation: the KV replay under escalating ECC
        # error rates, per policy -- DRAM erosion vs tail latency and
        # availability.
        "$b" --out=BENCH_degradation.json \
            --csv=results/degradation_sweep.csv 2>/dev/null
    else
        "$b" 2>/dev/null
    fi
    echo
done

# Failure-rate sensitivity: the same workload under increasingly lossy
# migration, exercising the retry/backoff path and the circuit breaker.
echo "=== fault_sensitivity ==="
echo "--- baseline: no faults ---"
./build/bench/policy_sweep --policy=autonuma \
    --tunable scan_period_ms=0.5 --workload pr:kron \
    --out=results/fault_sweep_p0.csv 2>/dev/null
for p in 0.05 0.1 0.2 0.4; do
    echo "--- transient migration failures p=$p burst=8 ---"
    ./build/bench/policy_sweep --policy=autonuma \
        --tunable scan_period_ms=0.5 --workload pr:kron \
        --faults "migrate:p=$p,burst=8;seed=7" \
        --out="results/fault_sweep_p$p.csv" 2>/dev/null
done
echo

# THP sensitivity: Table 3's TLB-cost matrix and the policy ablation
# with 2 MiB PMD mappings on, next to the 4 KiB baselines printed above.
# Expect a lower dTLB miss rate and a narrower NVMmiss/DRAMmiss ratio.
echo "=== thp_sensitivity ==="
echo "--- table3_tlb_cost --thp ---"
./build/bench/table3_tlb_cost --thp 2>/dev/null
echo "--- ablation_policies --thp ---"
./build/bench/ablation_policies --thp 2>/dev/null
mv -f results/ablation_policies.csv results/ablation_policies_thp.csv \
    2>/dev/null || true
echo "--- policy_sweep --thp ---"
./build/bench/policy_sweep --policy=autonuma --thp \
    --tunable scan_period_ms=0.5 --workload pr:kron \
    --out=results/sweep_autonuma_thp.csv 2>/dev/null
echo

# Serving chaos: the tail sweep re-run under lossy migration with the
# invariant checker armed. The checksum column of the CSV must match
# the fault-free run above — the tail moves, the answers must not.
echo "=== serving_chaos ==="
MEMTIER_CHECK_INVARIANTS=1 ./build/bench/serving_tail \
    --policies=autonuma,exchange --no-thp \
    --faults "migrate:p=0.2,burst=4;seed=7" \
    --out=results/serving_chaos.json \
    --csv=results/serving_chaos.csv 2>/dev/null
echo

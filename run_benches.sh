#!/bin/bash
# Runs every bench binary in order, printing each one's report.
cd "$(dirname "$0")"
for b in build/bench/*; do
    name=$(basename "$b")
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "=== $name ==="
    if [ "$name" = "micro_tier_latency" ]; then
        "$b" --benchmark_min_time=0.1 2>/dev/null
    else
        "$b" 2>/dev/null
    fi
    echo
done
